package plan

import (
	"strings"
	"testing"

	"egocensus/internal/lang"
	"egocensus/internal/pattern"
)

// parseQuery parses a script and returns its single query plus the
// pattern catalog it defines.
func parseQuery(t *testing.T, src string) (*lang.SelectStmt, map[string]*pattern.Pattern) {
	t.Helper()
	script, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	qs := script.Queries()
	if len(qs) != 1 {
		t.Fatalf("queries = %d", len(qs))
	}
	return qs[0], script.Patterns
}

func TestBuildSingleCensusShape(t *testing.T) {
	q, cat := parseQuery(t, `
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes WHERE RND() < 0.5 ORDER BY COUNT DESC LIMIT 5`)
	l, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if l.Pair || l.Union || l.K != 2 || len(l.Aggs) != 1 {
		t.Fatalf("logical: %+v", l)
	}
	ol, ok := l.Root.(*OrderLimit)
	if !ok {
		t.Fatalf("root = %T want OrderLimit", l.Root)
	}
	census, ok := ol.Input.(*Census)
	if !ok {
		t.Fatalf("under OrderLimit: %T want Census", ol.Input)
	}
	fs, ok := census.Input.(*FocalSelect)
	if !ok {
		t.Fatalf("census input = %T want FocalSelect", census.Input)
	}
	if fs.Pairwise {
		t.Fatal("single-node query marked pairwise")
	}
	if _, ok := fs.Input.(*NodeScan); !ok {
		t.Fatalf("leaf = %T want NodeScan", fs.Input)
	}
}

func TestBuildPairShapeAndErrors(t *testing.T) {
	q, cat := parseQuery(t, `
PATTERN e1 { ?A-?B; }
SELECT n1.ID, n2.ID, COUNTP(e1, SUBGRAPH-UNION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2`)
	l, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Pair || !l.Union {
		t.Fatalf("pair flags: %+v", l)
	}
	pc, ok := l.Root.(*PairCensus)
	if !ok {
		t.Fatalf("root = %T want PairCensus", l.Root)
	}
	if _, ok := pc.Input.(*NodeScan); !ok {
		t.Fatalf("pair input = %T want NodeScan (no WHERE)", pc.Input)
	}

	// Unknown pattern.
	if _, err := Build(q, nil); err == nil || !strings.Contains(err.Error(), "unknown pattern") {
		t.Fatalf("unknown-pattern err = %v", err)
	}
	// No aggregate (the parser rejects this too; Build defends for
	// programmatically built statements).
	if _, err := Build(&lang.SelectStmt{}, cat); err == nil || !strings.Contains(err.Error(), "no COUNTP") {
		t.Fatalf("no-aggregate err = %v", err)
	}
	// Pairwise with two aggregates.
	q3, cat3 := parseQuery(t, `
PATTERN e1 { ?A-?B; }
PATTERN n1p { ?A; }
SELECT n1.ID, n2.ID, COUNTP(e1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)),
COUNTP(n1p, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2`)
	if _, err := Build(q3, cat3); err == nil || !strings.Contains(err.Error(), "single aggregate") {
		t.Fatalf("pair-multi-agg err = %v", err)
	}
}

func TestAutomorphisms(t *testing.T) {
	triangle := pattern.New("tri")
	for _, v := range []string{"A", "B", "C"} {
		triangle.MustAddNode(v, "")
	}
	triangle.MustAddEdge(0, 1, false, false)
	triangle.MustAddEdge(1, 2, false, false)
	triangle.MustAddEdge(0, 2, false, false)
	if got := Automorphisms(triangle, nil); got != 6 {
		t.Fatalf("triangle autos = %d want 6", got)
	}
	// Fixing one node pointwise leaves the swap of the other two.
	if got := Automorphisms(triangle, []int{0}); got != 2 {
		t.Fatalf("anchored triangle autos = %d want 2", got)
	}

	path := pattern.New("path")
	for _, v := range []string{"A", "B", "C"} {
		path.MustAddNode(v, "")
	}
	path.MustAddEdge(0, 1, false, false)
	path.MustAddEdge(1, 2, false, false)
	if got := Automorphisms(path, nil); got != 2 {
		t.Fatalf("path autos = %d want 2 (end swap)", got)
	}

	// A label on one endpoint breaks the symmetry.
	lpath := pattern.New("lpath")
	lpath.MustAddNode("A", "x")
	lpath.MustAddNode("B", "")
	lpath.MustAddEdge(0, 1, false, false)
	if got := Automorphisms(lpath, nil); got != 1 {
		t.Fatalf("labeled edge autos = %d want 1", got)
	}

	// Directed 3-cycle: rotations only.
	cyc := pattern.New("cyc")
	for _, v := range []string{"A", "B", "C"} {
		cyc.MustAddNode(v, "")
	}
	cyc.MustAddEdge(0, 1, true, false)
	cyc.MustAddEdge(1, 2, true, false)
	cyc.MustAddEdge(2, 0, true, false)
	if got := Automorphisms(cyc, nil); got != 3 {
		t.Fatalf("directed cycle autos = %d want 3", got)
	}
}
