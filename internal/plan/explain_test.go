package plan

import (
	"testing"

	"egocensus/internal/graph"
	"egocensus/internal/lang"
)

// goldenGraph is small and hand-built so every statistic in the golden
// plans below is exact and stable.
func goldenGraph() *graph.Graph {
	g := graph.New(false)
	g.AddNodes(6)
	edges := [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	for n := 0; n < 3; n++ {
		g.SetLabel(graph.NodeID(n), "core")
	}
	return g
}

func optimizeScript(t *testing.T, src string, env Env) *Physical {
	t.Helper()
	script, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(script.Queries()[0], script.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(l, env)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExplainGoldenSelective(t *testing.T) {
	env := Env{Stats: graph.ComputeStats(goldenGraph())}
	p := optimizeScript(t, `
PATTERN lt { ?A-?B; ?B-?C; ?A-?C; [?A.LABEL='core']; }
SELECT ID, COUNTP(lt, SUBGRAPH(ID, 2)) FROM nodes WHERE RND() < 0.5 ORDER BY COUNT DESC LIMIT 3`, env)
	want := `Plan [cost-based, est cost 15.6, est focal 3]
OrderLimit [ORDER BY COUNT DESC LIMIT 3]
└─ Census [1 aggregate(s), SUBGRAPH(ID, 2)] (ND-DIFF est cost 15.6)
   ├─ PatternDef [lt: 3 nodes (1 labeled), 3 edges (0 negated), 0 predicates, pivot ?A ecc 1]
   └─ FocalSelect [WHERE RND()<'0.5'] over nodes (est selectivity 0.5)
      └─ NodeScan [6 nodes, 7 edges, 1 labels, directed=false]
candidates for lt (est |M| 0.729, 2 automorphism(s)):
  ND-DIFF  15.6  <- chosen
  PT-BAS   18.4
  PT-OPT   24.3
  PT-RND   31.3
  ND-PVOT  35.5
  ND-BAS   51.8
`
	if got := p.Explain(); got != want {
		t.Fatalf("golden selective mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExplainGoldenNonSelective(t *testing.T) {
	env := Env{Stats: graph.ComputeStats(goldenGraph())}
	p := optimizeScript(t, `
PATTERN e1 { ?A-?B; }
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes`, env)
	want := `Plan [cost-based, est cost 7.35, est focal 6]
Census [1 aggregate(s), SUBGRAPH(ID, 1)] (ND-DIFF est cost 7.35)
├─ PatternDef [e1: 2 nodes (0 labeled), 1 edges (0 negated), 0 predicates, pivot ?A ecc 1]
└─ NodeScan [6 nodes, 7 edges, 1 labels, directed=false]
candidates for e1 (est |M| 7, 2 automorphism(s)):
  ND-DIFF  7.35  <- chosen
  PT-BAS   30.2
  PT-OPT   31.9
  PT-RND   38.1
  ND-PVOT  46.8
  ND-BAS   81.7
`
	if got := p.Explain(); got != want {
		t.Fatalf("golden non-selective mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExplainGoldenPairForced(t *testing.T) {
	env := Env{Stats: graph.ComputeStats(goldenGraph()), Forced: PTOpt, KMeansIters: 5}
	p := optimizeScript(t, `
PATTERN e1 { ?A-?B; }
SELECT n1.ID, n2.ID, COUNTP(e1, SUBGRAPH-UNION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2`, env)
	want := `Plan [forced PT-OPT, est cost 38.4, est focal 36]
PairCensus [SUBGRAPH-UNION(n1, n2, 1)] (PT-OPT, est cost 38.4)
├─ PatternDef [e1: 2 nodes (0 labeled), 1 edges (0 negated), 0 predicates, pivot ?A ecc 1]
└─ NodeScan [6 nodes, 7 edges, 1 labels, directed=false]
candidates for e1 (est |M| 7, 2 automorphism(s)):
  PT-BAS   35.9
  PT-OPT   38.4  <- chosen
  PT-RND   51.7
  ND-PVOT  285
  ND-BAS   863
`
	if got := p.Explain(); got != want {
		t.Fatalf("golden pair mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
