package plan

import (
	"math"
	"strconv"
	"strings"

	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/pattern"
)

// Algorithm names, mirrored from internal/core as plain strings (core
// imports plan, so plan cannot import core; core.Algorithm is a string
// type and converts directly).
const (
	NDBas  = "ND-BAS"
	NDDiff = "ND-DIFF"
	NDPvot = "ND-PVOT"
	PTBas  = "PT-BAS"
	PTRnd  = "PT-RND"
	PTOpt  = "PT-OPT"
)

// Algorithms lists the census algorithms in presentation order.
var Algorithms = []string{NDBas, NDDiff, NDPvot, PTBas, PTRnd, PTOpt}

// PairAlgorithms lists the algorithms with a pairwise variant (ND-DIFF's
// DFS-order sharing has none; the engine substitutes ND-PVOT).
var PairAlgorithms = []string{NDBas, NDPvot, PTBas, PTRnd, PTOpt}

// Cost-unit constants, calibrated so the model reproduces the measured
// ranking of BENCH_1.json's fig4c sweep (unlabeled triangle census,
// n=1000 preferential-attachment, k=2): ND-PVOT < PT-BAS < ND-DIFF <<
// PT-OPT < PT-RND << ND-BAS. A unit is roughly one adjacency-array touch.
//
// Re-checked after the bitset/hub-bitmap CN kernels and the zero-alloc
// counting runs landed: the speedup is close to uniform across drivers
// (the shared global matching pass and ND-BAS's in-place masked counting
// both ride the same kernels), so the measured fig4c order is unchanged
// and the constants still rank correctly. PT-RND and PT-OPT now measure
// within ~2% of each other on this workload — effectively a tie, in
// either order — and the model's tiny PT-OPT preference remains a valid
// tiebreak.
const (
	// cMatchEdge is the per-edge cost of a candidate check in CN matching.
	cMatchEdge = 1.5
	// cContain is the per-match cost of probing anchor distances against a
	// focal node's BFS plane (ND-PVOT's counting step).
	cContain = 0.1
	// cPTVisit is the per-half-edge cost of a PT-BAS reverse BFS step,
	// discounted because a match's k-hop ball is walked once for all its
	// anchors, but dearer per edge than ND-PVOT's flat distance plane.
	cPTVisit = 0.105
	// cCluster is the per-match×cluster×iteration cost of a K-means
	// distance evaluation (PT-OPT's clustering step; K = |M|/4 makes this
	// quadratic in |M|).
	cCluster = 0.005
	// ndDiffReuse is the fraction of ND-BAS work ND-DIFF retains when the
	// whole node set is focal and DFS-order delta maintenance applies.
	ndDiffReuse = 0.09
	// clusterOverlap discounts the cluster-BFS term of PT-OPT: members of
	// a K-means cluster share most of their neighborhood expansion.
	clusterOverlap = 0.5
	// defaultEqSel / defaultNeSel / defaultRangeSel are the textbook
	// selectivity guesses for predicates over attributes the statistics
	// snapshot knows nothing about.
	defaultEqSel    = 0.1
	defaultNeSel    = 0.9
	defaultRangeSel = 1.0 / 3
)

// CostInput gathers the estimated quantities one aggregate's cost
// formulas share. Build it with (*Physical fields set by) Optimize or
// directly in tests.
type CostInput struct {
	// Matches is the estimated global match-set size |M|.
	Matches float64
	// Focals is the estimated number of focal nodes (or ordered pairs)
	// after the WHERE clause.
	Focals float64
	// NbrNodes / NbrEdges estimate the k-hop neighborhood size and the
	// half-edges a BFS over it scans.
	NbrNodes, NbrEdges float64
	// Contain is the probability that a given match lies inside a given
	// focal neighborhood.
	Contain float64
	// PatternEdges counts the pattern's positive edges.
	PatternEdges int
	// KMeansIters bounds PT-OPT's clustering iterations (paper default 10).
	KMeansIters int
	// Stats is the underlying snapshot (degree sum, node count).
	Stats *graph.Stats
}

// Clusters is the K-means cluster count the PT drivers default to:
// |M|/4, at least 1.
func (c CostInput) Clusters() float64 {
	k := c.Matches / 4
	if k < 1 {
		k = 1
	}
	return k
}

func (c CostInput) iters() float64 {
	if c.KMeansIters <= 0 {
		return 10
	}
	return float64(c.KMeansIters)
}

// commonCost is the work every match-materializing algorithm pays first:
// a global CN matching pass (degree-sum scan plus per-match edge joins).
func (c CostInput) commonCost() float64 {
	return c.Stats.FallingMoment(1) + c.Matches*float64(c.PatternEdges)*cMatchEdge
}

// Cost estimates the work of running alg on this input, in abstract
// adjacency-touch units. Unknown names cost +Inf.
func (c CostInput) Cost(alg string) float64 {
	local := c.Matches * c.Contain // matches inside one focal neighborhood
	switch alg {
	case NDBas:
		// Per focal node: extract the ego subgraph (scan its half-edges),
		// then re-match locally — work proportional to the local matches.
		return c.Focals * (c.NbrEdges + local*float64(c.PatternEdges)*cMatchEdge)
	case NDDiff:
		// Delta maintenance along a DFS order reuses neighbor censuses;
		// the advantage decays as the focal set thins out.
		frac := 0.0
		if c.Stats.Nodes > 0 {
			frac = c.Focals / float64(c.Stats.Nodes)
			if frac > 1 {
				frac = 1
			}
		}
		reuse := math.Pow(ndDiffReuse, frac)
		return reuse * c.Cost(NDBas)
	case NDPvot:
		// Global matching, then per focal node one BFS distance plane plus
		// an anchor-distance probe per match.
		return c.commonCost() + c.Focals*c.NbrNodes + c.Focals*local*cContain
	case PTBas:
		// Global matching, then per match a reverse BFS of radius k
		// crediting every focal node it reaches.
		return c.commonCost() + c.Matches*c.NbrEdges*cPTVisit
	case PTRnd:
		// Random clustering: one BFS per cluster, no sharing within it.
		return c.commonCost() + c.Clusters()*c.NbrEdges
	case PTOpt:
		// K-means clustering (quadratic in |M| through K=|M|/4), then one
		// partially-shared BFS per cluster.
		return c.commonCost() +
			c.Matches*c.Clusters()*c.iters()*cCluster +
			c.Clusters()*c.NbrEdges*clusterOverlap
	}
	return math.Inf(1)
}

// Best returns the cheapest of the allowed algorithms and its cost.
func (c CostInput) Best(allowed []string) (string, float64) {
	best, bestCost := "", math.Inf(1)
	for _, alg := range allowed {
		if cost := c.Cost(alg); cost < bestCost {
			best, bestCost = alg, cost
		}
	}
	return best, bestCost
}

// EstimateMatches predicts the global match-set size |M| for a pattern
// under the configuration model: the expected number of label- and
// predicate-consistent homomorphic images, divided by the number of
// counting-equivalent automorphisms. sub names the designated subpattern
// for COUNTSP semantics ("" for COUNTP): automorphisms must then fix the
// subpattern pointwise, because re-assignments of the subpattern image
// count as distinct matches (Table I row 4).
func EstimateMatches(p *pattern.Pattern, sub string, s *graph.Stats) (matches, homs float64, autos int) {
	posEdges := 0
	for _, e := range p.Edges() {
		if !e.Negated {
			posEdges++
		}
	}
	// Configuration model: Π_i M_{δ_i} / (Σd)^e, where M_j is the j-th
	// falling-factorial degree moment — the number of ways to pick j
	// distinct half-edge stubs at one node — and each pattern edge consumes
	// one stub pairing with probability ≈ 1/Σd. Label constraints thin each
	// node's candidate pool by the label frequency.
	homs = 1
	for i := 0; i < p.NumNodes(); i++ {
		homs *= s.FallingMoment(len(p.PositiveNeighbors(i)))
		if l := p.Node(i).Label; l != "" {
			homs *= s.LabelFreq(l)
		}
	}
	degSum := s.FallingMoment(1)
	for j := 0; j < posEdges; j++ {
		if degSum == 0 {
			homs = 0
			break
		}
		homs /= degSum
	}
	for _, pr := range p.Predicates() {
		homs *= PredicateSelectivity(pr, s)
	}
	var fixed []int
	if sub != "" {
		fixed, _ = p.Subpattern(sub)
	}
	autos = Automorphisms(p, fixed)
	return homs / float64(autos), homs, autos
}

// Automorphisms counts the permutations of pattern nodes that preserve
// labels and the full edge structure (positive and negated, with
// orientation) while fixing every node in fixed pointwise. Patterns are
// tiny, so plain enumeration suffices; above 8 nodes the count degrades
// to 1 (a conservative over-estimate of |M|).
func Automorphisms(p *pattern.Pattern, fixed []int) int {
	n := p.NumNodes()
	if n == 0 || n > 8 {
		return 1
	}
	edges := map[[3]int]bool{}
	for _, e := range p.Edges() {
		edges[edgeKey(e.From, e.To, e.Directed, e.Negated)] = true
	}
	isFixed := make([]bool, n)
	for _, i := range fixed {
		isFixed[i] = true
	}
	perm := make([]int, n)
	used := make([]bool, n)
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			for _, e := range p.Edges() {
				if !edges[edgeKey(perm[e.From], perm[e.To], e.Directed, e.Negated)] {
					return
				}
			}
			count++
			return
		}
		if isFixed[i] {
			if used[i] {
				return
			}
			perm[i], used[i] = i, true
			rec(i + 1)
			used[i] = false
			return
		}
		for j := 0; j < n; j++ {
			if used[j] || isFixed[j] && j != i || p.Node(j).Label != p.Node(i).Label {
				continue
			}
			perm[i], used[j] = j, true
			rec(i + 1)
			used[j] = false
		}
	}
	rec(0)
	if count < 1 {
		return 1
	}
	return count
}

func edgeKey(from, to int, directed, negated bool) [3]int {
	kind := 0
	if directed {
		kind = 1
	}
	if negated {
		kind += 2
	}
	if !directed && from > to {
		from, to = to, from
	}
	return [3]int{from, to, kind}
}

// PredicateSelectivity estimates the fraction of candidate matches a
// pattern predicate retains. LABEL comparisons use the snapshot's label
// frequencies; other attributes fall back to textbook constants.
func PredicateSelectivity(pr pattern.Predicate, s *graph.Stats) float64 {
	eq := predicateEqSel(pr, s)
	switch pr.Op {
	case pattern.OpEq:
		return eq
	case pattern.OpNe:
		return clamp01(1 - eq)
	default:
		return defaultRangeSel
	}
}

func predicateEqSel(pr pattern.Predicate, s *graph.Stats) float64 {
	lLabel := isLabelAttr(pr.L)
	rLabel := isLabelAttr(pr.R)
	switch {
	case lLabel && rLabel:
		return s.LabelMatchProb()
	case lLabel && isConstOperand(pr.R):
		return s.LabelFreq(pr.R.Const)
	case rLabel && isConstOperand(pr.L):
		return s.LabelFreq(pr.L.Const)
	default:
		return defaultEqSel
	}
}

func isLabelAttr(o pattern.Operand) bool {
	return o.Node >= 0 && strings.EqualFold(o.Attr, graph.LabelAttr)
}

func isConstOperand(o pattern.Operand) bool {
	return o.Node < 0 && o.EdgeFrom < 0
}

// WhereSelectivity estimates the fraction of focal candidates a WHERE
// clause retains: AND multiplies, OR uses inclusion-exclusion, NOT
// complements, RND()<c samples at rate c, and comparisons use label
// frequencies where the snapshot knows them.
func WhereSelectivity(e lang.Expr, s *graph.Stats) float64 {
	if e == nil {
		return 1
	}
	switch x := e.(type) {
	case *lang.BoolExpr:
		l, r := WhereSelectivity(x.L, s), WhereSelectivity(x.R, s)
		if x.Op == "AND" {
			return l * r
		}
		return clamp01(l + r - l*r)
	case *lang.NotExpr:
		return clamp01(1 - WhereSelectivity(x.E, s))
	case *lang.CmpExpr:
		return cmpSelectivity(x, s)
	}
	return 1
}

func cmpSelectivity(x *lang.CmpExpr, s *graph.Stats) float64 {
	if _, ok := x.L.(lang.RndOperand); ok {
		return rndSelectivity(x.Op, x.R, false)
	}
	if _, ok := x.R.(lang.RndOperand); ok {
		return rndSelectivity(x.Op, x.L, true)
	}
	eq := whereEqSel(x, s)
	switch x.Op {
	case pattern.OpEq:
		return eq
	case pattern.OpNe:
		return clamp01(1 - eq)
	default:
		return defaultRangeSel
	}
}

func whereEqSel(x *lang.CmpExpr, s *graph.Stats) float64 {
	lc, lCol := x.L.(lang.ColOperand)
	rc, rCol := x.R.(lang.ColOperand)
	lLabel := lCol && strings.EqualFold(lc.Ref.Name, graph.LabelAttr)
	rLabel := rCol && strings.EqualFold(rc.Ref.Name, graph.LabelAttr)
	switch {
	case lLabel && rLabel:
		return s.LabelMatchProb()
	case lLabel:
		if lit, ok := x.R.(lang.LitOperand); ok {
			return s.LabelFreq(lit.Value)
		}
	case rLabel:
		if lit, ok := x.L.(lang.LitOperand); ok {
			return s.LabelFreq(lit.Value)
		}
	}
	return defaultEqSel
}

// rndSelectivity handles RND() op X (mirrored=false) or X op RND()
// (mirrored=true) where X is a numeric literal sampling rate.
func rndSelectivity(op pattern.CmpOp, other lang.Operand, mirrored bool) float64 {
	lit, ok := other.(lang.LitOperand)
	if !ok {
		return 0.5
	}
	c, err := strconv.ParseFloat(lit.Value, 64)
	if err != nil {
		return 0.5
	}
	c = clamp01(c)
	if mirrored {
		// 'c' op RND(): flip the inequality direction.
		switch op {
		case pattern.OpLt, pattern.OpLe:
			return clamp01(1 - c)
		case pattern.OpGt, pattern.OpGe:
			return c
		}
	} else {
		switch op {
		case pattern.OpLt, pattern.OpLe:
			return c
		case pattern.OpGt, pattern.OpGe:
			return clamp01(1 - c)
		}
	}
	switch op {
	case pattern.OpEq:
		return 0
	default: // !=
		return 1
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
