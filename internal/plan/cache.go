package plan

import (
	"container/list"
	"sync"
)

// CacheKey identifies one compiled plan: the canonical query fingerprint
// plus the statistics epoch the plan was costed against and an engine
// configuration tag (forced algorithm, tuning knobs). A publish advances
// the epoch, so plans priced on stale statistics age out of the working
// set instead of being served forever.
type CacheKey struct {
	Fingerprint [16]byte
	Epoch       uint64
	Config      uint64
}

// CacheStats are cumulative hit/miss counters for one cache.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// Cache is a bounded, concurrency-safe LRU of compiled plan artifacts.
// Values are opaque (the execution layer stores its compiled pipelines
// here; this package deliberately does not depend on it). A zero capacity
// disables caching: Put is a no-op and Get always misses.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[CacheKey]*list.Element
	lru     *list.List // front = most recent
	stats   CacheStats
}

type cacheEntry struct {
	key CacheKey
	val any
}

// NewCache returns an LRU plan cache holding at most capacity entries.
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:     capacity,
		entries: make(map[CacheKey]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key CacheKey) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry when over capacity.
func (c *Cache) Put(key CacheKey, val any) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a point-in-time copy of the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	return st
}

// Purge drops every entry (counters are preserved).
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	for k := range c.entries {
		delete(c.entries, k)
	}
}
