// Package plan is the logical-planning and optimization layer of the
// query pipeline. The four layers are:
//
//	lang     — parsing: source text to AST (internal/lang)
//	plan     — this package: logical plan trees built from the AST, a cost
//	           model over graph.Stats snapshots, and a statistics-driven
//	           optimizer that chooses among the six census algorithms
//	execute  — physical operators over the census drivers (internal/core)
//	render   — result tables (internal/core)
//
// The package deliberately does not import internal/core: core compiles
// physical pipelines from the Physical plans produced here, so the
// algorithm identities are plain strings shared by convention (the
// paper's names, e.g. "PT-OPT").
package plan

import (
	"fmt"

	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/pattern"
)

// Node is a logical plan node. Children are rendered as a tree by Explain.
type Node interface {
	// Label renders the node's head line for plan display.
	Label() string
	Children() []Node
}

// NodeScan is the leaf: the focal-candidate scan over all graph nodes.
// Stats is attached by Optimize.
type NodeScan struct {
	Stats *graph.Stats
}

// Label implements Node.
func (n *NodeScan) Label() string {
	if n.Stats == nil {
		return "NodeScan"
	}
	return fmt.Sprintf("NodeScan [%d nodes, %d edges, %d labels, directed=%v]",
		n.Stats.Nodes, n.Stats.Edges, n.Stats.NumLabels(), n.Stats.Directed)
}

// Children implements Node.
func (n *NodeScan) Children() []Node { return nil }

// FocalSelect restricts the focal nodes (or ordered pairs) by the WHERE
// clause. Selectivity is annotated by Optimize.
type FocalSelect struct {
	Where       lang.Expr
	Pairwise    bool
	Selectivity float64
	Input       Node
}

// Label implements Node.
func (n *FocalSelect) Label() string {
	unit := "nodes"
	if n.Pairwise {
		unit = "ordered pairs"
	}
	return fmt.Sprintf("FocalSelect [WHERE %s] over %s (est selectivity %.3g)",
		lang.ExprString(n.Where), unit, n.Selectivity)
}

// Children implements Node.
func (n *FocalSelect) Children() []Node { return []Node{n.Input} }

// PatternDef is a leaf naming one pattern an aggregate counts, with the
// structural facts the cost model uses.
type PatternDef struct {
	Pattern    *pattern.Pattern
	Subpattern string
}

// Label implements Node.
func (n *PatternDef) Label() string {
	p := n.Pattern
	labeled, negated := 0, 0
	for i := 0; i < p.NumNodes(); i++ {
		if p.Node(i).Label != "" {
			labeled++
		}
	}
	for _, e := range p.Edges() {
		if e.Negated {
			negated++
		}
	}
	pivot, ecc := p.Pivot(nil)
	s := fmt.Sprintf("PatternDef [%s: %d nodes (%d labeled), %d edges (%d negated), %d predicates, pivot ?%s ecc %d]",
		p.Name, p.NumNodes(), labeled, len(p.Edges()), negated, len(p.Predicates()), p.Node(pivot).Var, ecc)
	if n.Subpattern != "" {
		sub, _ := p.Subpattern(n.Subpattern)
		s += fmt.Sprintf(" anchors=subpattern %q (%d of %d nodes)", n.Subpattern, len(sub), p.NumNodes())
	}
	return s
}

// Children implements Node.
func (n *PatternDef) Children() []Node { return nil }

// Agg is one COUNTP/COUNTSP aggregate with its pattern resolved.
type Agg struct {
	Pattern    *pattern.Pattern
	Subpattern string
}

// Census is a single-node census over one or more aggregates sharing the
// SUBGRAPH(ID, k) neighborhood.
type Census struct {
	Aggs  []Agg
	K     int
	Input Node
}

// Label implements Node.
func (n *Census) Label() string {
	return fmt.Sprintf("Census [%d aggregate(s), SUBGRAPH(ID, %d)]", len(n.Aggs), n.K)
}

// Children implements Node.
func (n *Census) Children() []Node {
	var out []Node
	for i := range n.Aggs {
		out = append(out, &PatternDef{Pattern: n.Aggs[i].Pattern, Subpattern: n.Aggs[i].Subpattern})
	}
	return append(out, n.Input)
}

// PairCensus is a pairwise census over neighborhood intersections/unions.
type PairCensus struct {
	Agg   Agg
	K     int
	Union bool
	Input Node
}

// Label implements Node.
func (n *PairCensus) Label() string {
	kind := "SUBGRAPH-INTERSECTION"
	if n.Union {
		kind = "SUBGRAPH-UNION"
	}
	return fmt.Sprintf("PairCensus [%s(n1, n2, %d)]", kind, n.K)
}

// Children implements Node.
func (n *PairCensus) Children() []Node {
	return []Node{&PatternDef{Pattern: n.Agg.Pattern, Subpattern: n.Agg.Subpattern}, n.Input}
}

// OrderLimit applies ORDER BY and/or LIMIT post-processing.
type OrderLimit struct {
	Order *lang.OrderBy
	Limit int
	Input Node
}

// Label implements Node.
func (n *OrderLimit) Label() string {
	s := "OrderLimit ["
	if n.Order != nil {
		s += "ORDER BY "
		if n.Order.ByCount {
			s += "COUNT"
		} else {
			s += n.Order.Col.String()
		}
		if n.Order.Desc {
			s += " DESC"
		} else {
			s += " ASC"
		}
	}
	if n.Limit > 0 {
		if n.Order != nil {
			s += " "
		}
		s += fmt.Sprintf("LIMIT %d", n.Limit)
	}
	return s + "]"
}

// Children implements Node.
func (n *OrderLimit) Children() []Node { return []Node{n.Input} }

// Logical is a built (un-optimized) plan for one SELECT statement.
type Logical struct {
	Root  Node
	Query *lang.SelectStmt
	// Pair reports a pairwise census; Aggs then has exactly one entry.
	Pair bool
	Aggs []Agg
	K    int
	// Union selects SUBGRAPH-UNION for pairwise censuses.
	Union bool
}

// Build constructs the logical plan for q, resolving pattern references
// against the catalog. It performs the semantic validation the engine
// historically did inline: at least one aggregate, known patterns, and a
// single aggregate for pairwise censuses.
func Build(q *lang.SelectStmt, catalog map[string]*pattern.Pattern) (*Logical, error) {
	aggs := q.CountItems()
	if len(aggs) == 0 {
		return nil, fmt.Errorf("plan: query has no COUNTP/COUNTSP aggregate")
	}
	l := &Logical{Query: q, K: aggs[0].Neighborhood.K}
	for _, agg := range aggs {
		pat, ok := catalog[agg.PatternName]
		if !ok {
			return nil, fmt.Errorf("plan: unknown pattern %q", agg.PatternName)
		}
		l.Aggs = append(l.Aggs, Agg{Pattern: pat, Subpattern: agg.Subpattern})
	}
	l.Pair = aggs[0].Neighborhood.Kind != lang.NSubgraph
	l.Union = aggs[0].Neighborhood.Kind == lang.NUnion
	if l.Pair && len(aggs) > 1 {
		return nil, fmt.Errorf("plan: pairwise queries support a single aggregate")
	}

	var input Node = &NodeScan{}
	if q.Where != nil {
		input = &FocalSelect{Where: q.Where, Pairwise: l.Pair, Selectivity: 1, Input: input}
	}
	if l.Pair {
		l.Root = &PairCensus{Agg: l.Aggs[0], K: l.K, Union: l.Union, Input: input}
	} else {
		l.Root = &Census{Aggs: l.Aggs, K: l.K, Input: input}
	}
	if q.Order != nil || q.Limit > 0 {
		l.Root = &OrderLimit{Order: q.Order, Limit: q.Limit, Input: l.Root}
	}
	return l, nil
}
