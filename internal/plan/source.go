package plan

import "egocensus/internal/graph"

// Source supplies a graph to plan against and execute on. Planning only
// needs the statistics snapshot — cheap for every backend — while
// execution hydrates a full in-memory graph lazily, so a disk store can
// answer EXPLAIN (and the optimizer can price a query) before paying
// materialization. storage.Store implements this contract; FromGraph
// adapts an already-materialized graph.
type Source interface {
	// GraphStats returns the statistics snapshot. Implementations should
	// derive it from resident metadata where possible and memoize it.
	GraphStats() (*graph.Stats, error)
	// Graph materializes (or returns the cached) full graph for execution.
	Graph() (*graph.Graph, error)
}

// GraphSource adapts an in-memory graph to the Source interface,
// memoizing its statistics snapshot.
type GraphSource struct {
	g     *graph.Graph
	stats *graph.Stats
}

// FromGraph wraps an in-memory graph as a Source.
func FromGraph(g *graph.Graph) *GraphSource {
	return &GraphSource{g: g}
}

// GraphStats implements Source.
func (s *GraphSource) GraphStats() (*graph.Stats, error) {
	if s.stats == nil {
		s.stats = graph.ComputeStats(s.g)
	}
	return s.stats, nil
}

// Graph implements Source.
func (s *GraphSource) Graph() (*graph.Graph, error) { return s.g, nil }
