package plan

import (
	"runtime"
	"sync"

	"egocensus/internal/graph"
)

// Source supplies a graph to plan against and execute on. Planning only
// needs the statistics snapshot — cheap for every backend — while
// execution hydrates a full in-memory graph lazily, so a disk store can
// answer EXPLAIN (and the optimizer can price a query) before paying
// materialization. storage.Store implements this contract; FromGraph
// adapts an already-materialized graph.
type Source interface {
	// GraphStats returns the statistics snapshot. Implementations should
	// derive it from resident metadata where possible and memoize it.
	GraphStats() (*graph.Stats, error)
	// Graph materializes (or returns the cached) full graph for execution.
	Graph() (*graph.Graph, error)
}

// GraphSource adapts an in-memory graph to the Source interface,
// memoizing its statistics snapshot.
type GraphSource struct {
	g     *graph.Graph
	stats *graph.Stats
}

// FromGraph wraps an in-memory graph as a Source.
func FromGraph(g *graph.Graph) *GraphSource {
	return &GraphSource{g: g}
}

// GraphStats implements Source.
func (s *GraphSource) GraphStats() (*graph.Stats, error) {
	if s.stats == nil {
		s.stats = graph.ComputeStats(s.g)
	}
	return s.stats, nil
}

// Graph implements Source.
func (s *GraphSource) Graph() (*graph.Graph, error) { return s.g, nil }

// SnapshotSource extends Source for versioned (MVCC) backends. A query
// pins one immutable snapshot and both plans and executes against it, so
// EXPLAIN's statistics describe exactly the version the execution would
// see — even while a Writer keeps publishing behind it.
type SnapshotSource interface {
	Source
	// Snapshot returns the current published version (O(1)).
	Snapshot() *graph.Snapshot
	// StatsAt returns the statistics of one pinned snapshot.
	// Implementations should memoize per epoch: repeated planning against
	// an unchanged version must not recompute.
	StatsAt(s *graph.Snapshot) (*graph.Stats, error)
}

// WriterSource adapts a graph.Writer as a SnapshotSource: every call
// observes the writer's latest published snapshot, and statistics are
// memoized per epoch so only the first query after a publish pays the
// recompute.
type WriterSource struct {
	w *graph.Writer

	mu         sync.Mutex
	statsEpoch uint64
	stats      *graph.Stats
}

// FromWriter wraps a writer's published snapshots as a Source.
func FromWriter(w *graph.Writer) *WriterSource {
	return &WriterSource{w: w}
}

// Snapshot implements SnapshotSource.
func (s *WriterSource) Snapshot() *graph.Snapshot { return s.w.Snapshot() }

// StatsAt implements SnapshotSource, memoizing the newest epoch's stats.
func (s *WriterSource) StatsAt(snap *graph.Snapshot) (*graph.Stats, error) {
	s.mu.Lock()
	if s.stats != nil && s.statsEpoch == snap.Epoch() {
		st := s.stats
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()
	// Compute outside the lock: stats over a frozen snapshot are pure.
	st := graph.ComputeStats(snap.Graph())
	st.Epoch = snap.Epoch()
	s.mu.Lock()
	// Last writer wins; only overwrite a cache for an older epoch so a
	// concurrent computation for a newer version is not clobbered.
	if s.stats == nil || s.statsEpoch <= snap.Epoch() {
		s.statsEpoch, s.stats = snap.Epoch(), st
	}
	s.mu.Unlock()
	return st, nil
}

// GraphStats implements Source against the latest published version.
func (s *WriterSource) GraphStats() (*graph.Stats, error) {
	return s.StatsAt(s.Snapshot())
}

// Graph implements Source against the latest published version.
func (s *WriterSource) Graph() (*graph.Graph, error) {
	return s.Snapshot().Graph(), nil
}

// PartitionedSource extends SnapshotSource for sharded backends: the
// engine injects the source's partitioner into execution options so the
// census scheduler can seed work shard-affinely.
type PartitionedSource interface {
	SnapshotSource
	// Partitioner returns the node partitioner the backing store was
	// created with.
	Partitioner() graph.Partitioner
}

// ShardedWriterSource adapts a graph.ShardedWriter as a
// PartitionedSource: snapshots pin exactly like WriterSource, and the
// per-epoch statistics snapshot is computed shard-parallel (one goroutine
// per shard, capped at GOMAXPROCS) and merged.
type ShardedWriterSource struct {
	w *graph.ShardedWriter

	mu         sync.Mutex
	statsEpoch uint64
	stats      *graph.Stats
}

// FromShardedWriter wraps a sharded writer's published snapshots as a
// Source.
func FromShardedWriter(w *graph.ShardedWriter) *ShardedWriterSource {
	return &ShardedWriterSource{w: w}
}

// Snapshot implements SnapshotSource.
func (s *ShardedWriterSource) Snapshot() *graph.Snapshot { return s.w.Snapshot() }

// Partitioner implements PartitionedSource.
func (s *ShardedWriterSource) Partitioner() graph.Partitioner { return s.w.Partitioner() }

// StatsAt implements SnapshotSource, aggregating per-shard statistics in
// parallel and memoizing the newest epoch's result.
func (s *ShardedWriterSource) StatsAt(snap *graph.Snapshot) (*graph.Stats, error) {
	s.mu.Lock()
	if s.stats != nil && s.statsEpoch == snap.Epoch() {
		st := s.stats
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()
	// Compute outside the lock: stats over a frozen snapshot are pure.
	st := graph.ComputeStatsSharded(snap.Graph(), s.w.Partitioner(), runtime.GOMAXPROCS(0))
	st.Epoch = snap.Epoch()
	s.mu.Lock()
	// Last writer wins; only overwrite a cache for an older epoch so a
	// concurrent computation for a newer version is not clobbered.
	if s.stats == nil || s.statsEpoch <= snap.Epoch() {
		s.statsEpoch, s.stats = snap.Epoch(), st
	}
	s.mu.Unlock()
	return st, nil
}

// GraphStats implements Source against the latest published version.
func (s *ShardedWriterSource) GraphStats() (*graph.Stats, error) {
	return s.StatsAt(s.Snapshot())
}

// Graph implements Source against the latest published version.
func (s *ShardedWriterSource) Graph() (*graph.Graph, error) {
	return s.Snapshot().Graph(), nil
}
