package plan

import (
	"fmt"

	"egocensus/internal/graph"
)

// Env carries the optimizer's inputs beyond the logical plan itself.
type Env struct {
	// Stats is the statistics snapshot of the target graph (required).
	Stats *graph.Stats
	// Forced pins the algorithm choice (the engine's \alg escape hatch);
	// empty selects cost-based optimization. Pair queries substitute
	// ND-PVOT for a forced ND-DIFF, which has no pairwise variant.
	Forced string
	// KMeansIters bounds PT-OPT clustering iterations (0 → paper's 10).
	KMeansIters int
}

// AggChoice records the optimizer's decision for one aggregate.
type AggChoice struct {
	// Algorithm is the chosen census algorithm name (core.Algorithm text).
	Algorithm string
	// Cost is the estimated cost of the choice in abstract units.
	Cost float64
	// Matches is the estimated global match-set size |M|.
	Matches float64
	// Autos is the automorphism divisor used in the |M| estimate.
	Autos int
	// Costs holds every candidate algorithm's estimate (for EXPLAIN).
	Costs map[string]float64
}

// Physical is an optimized plan: the logical tree annotated with
// statistics, selectivity, and per-aggregate algorithm choices.
type Physical struct {
	*Logical
	Stats *graph.Stats
	// Selectivity is the estimated WHERE retention rate; Focals the
	// resulting focal-node (or ordered-pair) count.
	Selectivity float64
	Focals      float64
	// NbrNodes / NbrEdges estimate the k-hop neighborhood reach.
	NbrNodes, NbrEdges float64
	// Choices has one entry per aggregate, in SELECT-list order.
	Choices []AggChoice
	// Batched marks a multi-aggregate census evaluated with one shared
	// BFS per focal node (the batched ND-PVOT driver) instead of
	// independent per-aggregate runs.
	Batched bool
	// TotalCost sums the chosen strategies' estimates.
	TotalCost float64
	// Forced echoes Env.Forced (after pairwise ND-DIFF substitution).
	Forced string
}

// Algorithm returns the algorithm executed for aggregate i.
func (p *Physical) Algorithm(i int) string { return p.Choices[i].Algorithm }

// Optimize chooses the physical strategy for a logical plan: it estimates
// WHERE selectivity and per-pattern match-set sizes from the statistics
// snapshot, prices all six algorithms, and picks the cheapest (or the
// forced one). The logical tree is annotated in place (NodeScan gains the
// snapshot, FocalSelect its selectivity estimate) so EXPLAIN renders the
// optimized tree.
func Optimize(l *Logical, env Env) (*Physical, error) {
	s := env.Stats
	if s == nil {
		return nil, fmt.Errorf("plan: optimizer needs a statistics snapshot")
	}
	p := &Physical{
		Logical:     l,
		Stats:       s,
		Selectivity: WhereSelectivity(l.Query.Where, s),
		NbrNodes:    s.NeighborhoodNodes(l.K),
		NbrEdges:    s.NeighborhoodEdges(l.K),
		Forced:      env.Forced,
	}

	n := float64(s.Nodes)
	contain := 0.0
	if n > 0 {
		contain = p.NbrNodes / n
		if contain > 1 {
			contain = 1
		}
	}
	if l.Pair {
		p.Focals = p.Selectivity * n * n
		if l.Union {
			contain = clamp01(2*contain - contain*contain)
		} else {
			contain = contain * contain
		}
		if p.Forced == NDDiff {
			p.Forced = NDPvot
		}
	} else {
		p.Focals = p.Selectivity * n
	}

	allowed := Algorithms
	if l.Pair {
		allowed = PairAlgorithms
	}

	inputs := make([]CostInput, len(l.Aggs))
	for i, agg := range l.Aggs {
		matches, _, autos := EstimateMatches(agg.Pattern, agg.Subpattern, s)
		posEdges := 0
		for _, e := range agg.Pattern.Edges() {
			if !e.Negated {
				posEdges++
			}
		}
		in := CostInput{
			Matches:      matches,
			Focals:       p.Focals,
			NbrNodes:     p.NbrNodes,
			NbrEdges:     p.NbrEdges,
			Contain:      contain,
			PatternEdges: posEdges,
			KMeansIters:  env.KMeansIters,
			Stats:        s,
		}
		if l.Pair {
			// A pair touches two neighborhoods; double the per-focal BFS work.
			in.NbrNodes *= 2
			in.NbrEdges *= 2
		}
		inputs[i] = in
		choice := AggChoice{Matches: matches, Autos: autos, Costs: map[string]float64{}}
		for _, alg := range allowed {
			choice.Costs[alg] = in.Cost(alg)
		}
		if p.Forced != "" {
			choice.Algorithm = p.Forced
			choice.Cost = in.Cost(p.Forced)
		} else {
			choice.Algorithm, choice.Cost = in.Best(allowed)
		}
		p.Choices = append(p.Choices, choice)
	}

	// Multi-aggregate censuses can batch: one BFS distance plane per focal
	// node shared by every aggregate's containment probes (the CountMany
	// driver, which is ND-PVOT-shaped). Compare against independent runs.
	if !l.Pair && len(l.Aggs) > 1 {
		batched := p.Focals * p.NbrNodes // the shared BFS, paid once
		perAgg := 0.0
		for i := range inputs {
			batched += inputs[i].commonCost() + p.Focals*inputs[i].Matches*contain*cContain
			perAgg += p.Choices[i].Cost
		}
		if p.Forced == NDPvot || (p.Forced == "" && batched < perAgg) {
			p.Batched = true
			for i := range p.Choices {
				p.Choices[i].Algorithm = NDPvot
			}
			p.TotalCost = batched
		} else {
			p.TotalCost = perAgg
		}
	} else {
		for i := range p.Choices {
			p.TotalCost += p.Choices[i].Cost
		}
	}

	// Annotate the logical tree for EXPLAIN.
	annotate(l.Root, s, p.Selectivity)
	return p, nil
}

func annotate(n Node, s *graph.Stats, sel float64) {
	switch x := n.(type) {
	case *NodeScan:
		x.Stats = s
	case *FocalSelect:
		x.Selectivity = sel
	}
	for _, c := range n.Children() {
		annotate(c, s, sel)
	}
}
