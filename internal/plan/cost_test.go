package plan

import (
	"math"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/pattern"
)

func trianglePattern() *pattern.Pattern {
	p := pattern.New("tri")
	for _, v := range []string{"A", "B", "C"} {
		p.MustAddNode(v, "")
	}
	p.MustAddEdge(0, 1, false, false)
	p.MustAddEdge(1, 2, false, false)
	p.MustAddEdge(0, 2, false, false)
	return p
}

func TestEstimateMatchesEdgePattern(t *testing.T) {
	// For the single-edge pattern the configuration model is exact in
	// expectation: homs = (Σd)²/Σd = Σd = 2|E|, matches = |E|.
	g := gen.ErdosRenyi(200, 600, 11)
	s := graph.ComputeStats(g)
	e1 := pattern.New("e1")
	e1.MustAddNode("A", "")
	e1.MustAddNode("B", "")
	e1.MustAddEdge(0, 1, false, false)
	matches, homs, autos := EstimateMatches(e1, "", s)
	if autos != 2 {
		t.Fatalf("autos = %d", autos)
	}
	if math.Abs(homs-float64(2*g.NumEdges())) > 1e-6 {
		t.Fatalf("homs = %v want %d", homs, 2*g.NumEdges())
	}
	if math.Abs(matches-float64(g.NumEdges())) > 1e-6 {
		t.Fatalf("matches = %v want %d", matches, g.NumEdges())
	}
}

func TestEstimateMatchesLabelThinning(t *testing.T) {
	g := gen.ErdosRenyi(200, 600, 12)
	gen.AssignLabels(g, 4, 13)
	s := graph.ComputeStats(g)
	plain, _, _ := EstimateMatches(trianglePattern(), "", s)
	labeled := trianglePattern()
	labeled.SetLabel(0, gen.LabelName(0))
	got, _, autos := EstimateMatches(labeled, "", s)
	if autos != 2 {
		t.Fatalf("labeled triangle autos = %d want 2", autos)
	}
	// One label at frequency ~1/4 thins homs 4x, but the automorphism
	// divisor drops 6 -> 2, so matches shrink by about (6/2)/4 = 3/4.
	want := plain * s.LabelFreq(gen.LabelName(0)) * 6 / 2
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("labeled matches = %v want %v", got, want)
	}
}

func TestCostModelReproducesFig4cRanking(t *testing.T) {
	// The BENCH_1 fig4c sweep: unlabeled triangle census, k=2, over the
	// n=1000 preferential-attachment graph. The measured ranking is
	// ND-PVOT < PT-BAS < ND-DIFF << PT-OPT < PT-RND << ND-BAS; the cost
	// model must reproduce it from the statistics snapshot alone.
	g := gen.PreferentialAttachment(1000, 5, 1)
	s := graph.ComputeStats(g)
	matches, _, _ := EstimateMatches(trianglePattern(), "", s)
	n := float64(s.Nodes)
	nbrNodes := s.NeighborhoodNodes(2)
	in := CostInput{
		Matches:      matches,
		Focals:       n,
		NbrNodes:     nbrNodes,
		NbrEdges:     s.NeighborhoodEdges(2),
		Contain:      math.Min(1, nbrNodes/n),
		PatternEdges: 3,
		Stats:        s,
	}
	wantOrder := []string{NDPvot, PTBas, NDDiff, PTOpt, PTRnd, NDBas}
	for i := 1; i < len(wantOrder); i++ {
		lo, hi := in.Cost(wantOrder[i-1]), in.Cost(wantOrder[i])
		if !(lo < hi) {
			t.Fatalf("cost(%s)=%v not below cost(%s)=%v", wantOrder[i-1], lo, wantOrder[i], hi)
		}
	}
	if best, _ := in.Best(Algorithms); best != NDPvot {
		t.Fatalf("best = %s want %s", best, NDPvot)
	}
	if c := in.Cost("NO-SUCH"); !math.IsInf(c, 1) {
		t.Fatalf("unknown algorithm cost = %v want +Inf", c)
	}
}

func TestCostModelSelectiveRegimeFlipsToPatternDriven(t *testing.T) {
	// When the match set is tiny relative to the focal set, pattern-driven
	// evaluation must win over node-driven.
	g := gen.PreferentialAttachment(1000, 5, 1)
	s := graph.ComputeStats(g)
	n := float64(s.Nodes)
	nbrNodes := s.NeighborhoodNodes(2)
	in := CostInput{
		Matches:      20, // rare labeled pattern
		Focals:       n,
		NbrNodes:     nbrNodes,
		NbrEdges:     s.NeighborhoodEdges(2),
		Contain:      math.Min(1, nbrNodes/n),
		PatternEdges: 3,
		Stats:        s,
	}
	best, _ := in.Best(Algorithms)
	if best != PTBas && best != PTOpt && best != PTRnd {
		t.Fatalf("selective regime chose %s, want a PT variant", best)
	}
}

func TestWhereSelectivity(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 21)
	gen.AssignLabels(g, 2, 22)
	s := graph.ComputeStats(g)
	cases := []struct {
		where string
		want  float64
		tol   float64
	}{
		{"RND() < 0.3", 0.3, 1e-9},
		{"RND() >= 0.3", 0.7, 1e-9},
		{"0.3 > RND()", 0.3, 1e-9},
		{"RND() < 0.5 AND RND() < 0.5", 0.25, 1e-9},
		{"RND() < 0.5 OR RND() < 0.5", 0.75, 1e-9},
		{"NOT RND() < 0.25", 0.75, 1e-9},
		{"LABEL = 'l0'", s.LabelFreq("l0"), 1e-9},
		{"LABEL != 'l0'", 1 - s.LabelFreq("l0"), 1e-9},
		{"DEGREE > '3'", 1.0 / 3, 1e-9},
		{"NAME = 'x'", 0.1, 1e-9},
	}
	for _, tc := range cases {
		script, err := lang.Parse(`
PATTERN p { ?A; }
SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes WHERE ` + tc.where)
		if err != nil {
			t.Fatalf("%s: %v", tc.where, err)
		}
		got := WhereSelectivity(script.Queries()[0].Where, s)
		if math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("selectivity(%s) = %v want %v", tc.where, got, tc.want)
		}
	}
	if got := WhereSelectivity(nil, s); got != 1 {
		t.Fatalf("nil WHERE selectivity = %v", got)
	}
}

func TestOptimizeForcedAndPairSubstitution(t *testing.T) {
	g := gen.ErdosRenyi(50, 120, 31)
	s := graph.ComputeStats(g)
	script, err := lang.Parse(`
PATTERN e1 { ?A-?B; }
SELECT n1.ID, n2.ID, COUNTP(e1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))
FROM nodes AS n1, nodes AS n2`)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(script.Queries()[0], script.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	// Forcing ND-DIFF on a pairwise census substitutes ND-PVOT (no
	// pairwise ND-DIFF driver exists).
	p, err := Optimize(l, Env{Stats: s, Forced: NDDiff})
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm(0) != NDPvot || p.Forced != NDPvot {
		t.Fatalf("pair forced ND-DIFF resolved to %s", p.Algorithm(0))
	}
	// Cost-based pair optimization never offers ND-DIFF.
	p2, err := Optimize(l, Env{Stats: s})
	if err != nil {
		t.Fatal(err)
	}
	if _, offered := p2.Choices[0].Costs[NDDiff]; offered {
		t.Fatal("ND-DIFF priced for a pairwise census")
	}
	// Pair focal estimate is n².
	if want := float64(s.Nodes) * float64(s.Nodes); p2.Focals != want {
		t.Fatalf("pair focals = %v want %v", p2.Focals, want)
	}
	// Optimizing without stats fails.
	if _, err := Optimize(l, Env{}); err == nil {
		t.Fatal("Optimize without stats must fail")
	}
}

func TestOptimizeBatchesForcedNDPvotMultiAgg(t *testing.T) {
	g := gen.ErdosRenyi(50, 120, 33)
	s := graph.ComputeStats(g)
	script, err := lang.Parse(`
PATTERN e1 { ?A-?B; }
PATTERN w2 { ?A-?B; ?B-?C; }
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)), COUNTP(w2, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(script.Queries()[0], script.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(l, Env{Stats: s, Forced: NDPvot})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Batched {
		t.Fatal("forced ND-PVOT multi-aggregate census must batch")
	}
	for i := range p.Choices {
		if p.Algorithm(i) != NDPvot {
			t.Fatalf("choice %d = %s", i, p.Algorithm(i))
		}
	}
}
