package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Explain renders the optimized plan as a tree with cost annotations —
// the output of the language's EXPLAIN prefix and the shell's \explain.
func (p *Physical) Explain() string {
	var b strings.Builder
	mode := "cost-based"
	if p.Forced != "" {
		mode = "forced " + p.Forced
	}
	fmt.Fprintf(&b, "Plan [%s, est cost %s, est focal %s]\n", mode, fmtEst(p.TotalCost), fmtEst(p.Focals))
	p.renderNode(&b, p.Root, "", "")
	for i, choice := range p.Choices {
		fmt.Fprintf(&b, "candidates for %s (est |M| %s, %d automorphism(s)):\n",
			p.Aggs[i].Pattern.Name, fmtEst(choice.Matches), choice.Autos)
		algs := make([]string, 0, len(choice.Costs))
		for alg := range choice.Costs {
			algs = append(algs, alg)
		}
		sort.Slice(algs, func(a, b int) bool {
			ca, cb := choice.Costs[algs[a]], choice.Costs[algs[b]]
			if ca != cb {
				return ca < cb
			}
			return algs[a] < algs[b]
		})
		for _, alg := range algs {
			marker := ""
			if alg == choice.Algorithm {
				marker = "  <- chosen"
			}
			fmt.Fprintf(&b, "  %-8s %s%s\n", alg, fmtEst(choice.Costs[alg]), marker)
		}
	}
	return b.String()
}

// renderNode prints one node line and recurses with box-drawing prefixes.
func (p *Physical) renderNode(b *strings.Builder, n Node, firstPrefix, restPrefix string) {
	b.WriteString(firstPrefix)
	b.WriteString(n.Label())
	b.WriteString(p.annotation(n))
	b.WriteByte('\n')
	children := n.Children()
	for i, c := range children {
		connector, carry := "├─ ", "│  "
		if i == len(children)-1 {
			connector, carry = "└─ ", "   "
		}
		p.renderNode(b, c, restPrefix+connector, restPrefix+carry)
	}
}

// annotation appends the optimizer's decision to census nodes.
func (p *Physical) annotation(n Node) string {
	switch n.(type) {
	case *Census:
		if p.Batched {
			return fmt.Sprintf(" (batched %s, est cost %s)", NDPvot, fmtEst(p.TotalCost))
		}
		parts := make([]string, len(p.Choices))
		for i, c := range p.Choices {
			parts[i] = fmt.Sprintf("%s est cost %s", c.Algorithm, fmtEst(c.Cost))
		}
		return " (" + strings.Join(parts, "; ") + ")"
	case *PairCensus:
		c := p.Choices[0]
		return fmt.Sprintf(" (%s, est cost %s)", c.Algorithm, fmtEst(c.Cost))
	}
	return ""
}

// fmtEst renders estimates compactly and deterministically.
func fmtEst(v float64) string {
	return fmt.Sprintf("%.3g", v)
}
