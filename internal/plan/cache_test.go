package plan

import (
	"fmt"
	"sync"
	"testing"
)

func key(i int, epoch uint64) CacheKey {
	var k CacheKey
	copy(k.Fingerprint[:], fmt.Sprintf("%016d", i))
	k.Epoch = epoch
	return k
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put(key(1, 0), "a")
	c.Put(key(2, 0), "b")
	if _, ok := c.Get(key(1, 0)); !ok {
		t.Fatal("entry 1 missing")
	}
	// 1 is now most recent; inserting 3 must evict 2.
	c.Put(key(3, 0), "c")
	if _, ok := c.Get(key(2, 0)); ok {
		t.Fatal("entry 2 should have been evicted")
	}
	if _, ok := c.Get(key(1, 0)); !ok {
		t.Fatal("entry 1 should have survived")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEpochSeparatesEntries(t *testing.T) {
	c := NewCache(8)
	c.Put(key(1, 1), "old")
	c.Put(key(1, 2), "new")
	if v, ok := c.Get(key(1, 1)); !ok || v != "old" {
		t.Fatalf("epoch 1: %v %v", v, ok)
	}
	if v, ok := c.Get(key(1, 2)); !ok || v != "new" {
		t.Fatalf("epoch 2: %v %v", v, ok)
	}
	// Config tag separates too (same query, different forced algorithm).
	k := key(1, 2)
	k.Config = 7
	if _, ok := c.Get(k); ok {
		t.Fatal("config tag should separate entries")
	}
}

func TestCacheCounters(t *testing.T) {
	c := NewCache(4)
	c.Get(key(1, 0))
	c.Put(key(1, 0), "v")
	c.Get(key(1, 0))
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheZeroCapacityAndNil(t *testing.T) {
	c := NewCache(0)
	c.Put(key(1, 0), "v")
	if _, ok := c.Get(key(1, 0)); ok {
		t.Fatal("zero-capacity cache should never hit")
	}
	var nilCache *Cache
	nilCache.Put(key(1, 0), "v")
	if _, ok := nilCache.Get(key(1, 0)); ok {
		t.Fatal("nil cache should never hit")
	}
	if nilCache.Len() != 0 {
		t.Fatal("nil cache Len")
	}
	nilCache.Purge()
}

func TestCachePurge(t *testing.T) {
	c := NewCache(4)
	c.Put(key(1, 0), "v")
	c.Put(key(2, 0), "w")
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if _, ok := c.Get(key(1, 0)); ok {
		t.Fatal("purged entry still present")
	}
}

func TestCacheConcurrentStress(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(i%24, uint64(w%3))
				if i%2 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
