// Package gen builds the synthetic workloads used by the paper's
// evaluation: Barabási–Albert preferential-attachment graphs (the database
// graphs of Section V), Erdős–Rényi graphs, uniform random labellings,
// signed networks for the structural-balance application, and a temporal
// co-authorship generator that substitutes for the paper's DBLP corpus in
// the link-prediction experiment (Fig 4(h)).
//
// All generators are deterministic given their seed.
package gen

import (
	"fmt"
	"math/rand"

	"egocensus/internal/graph"
)

// PreferentialAttachment generates an undirected Barabási–Albert graph with
// n nodes in which each new node attaches to m distinct existing nodes
// chosen proportionally to degree. The result has roughly n*m edges; the
// paper's experiments use m = 5 ("number of edges 5x the number of nodes").
func PreferentialAttachment(n, m int, seed int64) *graph.Graph {
	if n <= 0 {
		panic("gen: n must be positive")
	}
	if m <= 0 {
		panic("gen: m must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(false)
	g.AddNodes(n)

	// targets holds one entry per half-edge endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	targets := make([]graph.NodeID, 0, 2*n*m)

	// Seed clique over the first m+1 nodes (or all nodes if n <= m).
	seedSize := m + 1
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			targets = append(targets, graph.NodeID(i), graph.NodeID(j))
		}
	}

	chosenSet := make(map[graph.NodeID]bool, m)
	chosen := make([]graph.NodeID, 0, m)
	for v := seedSize; v < n; v++ {
		for _, id := range chosen {
			delete(chosenSet, id)
		}
		chosen = chosen[:0]
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			if int(t) == v || chosenSet[t] {
				continue
			}
			chosenSet[t] = true
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			g.AddEdge(graph.NodeID(v), t)
			targets = append(targets, graph.NodeID(v), t)
		}
	}
	return g
}

// ErdosRenyi generates an undirected G(n, m) random simple graph with
// exactly m edges (m is capped at n*(n-1)/2).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	if n <= 0 {
		panic("gen: n must be positive")
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(false)
	g.AddNodes(n)
	seen := make(map[[2]graph.NodeID]bool, m)
	for g.NumEdges() < m {
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]graph.NodeID{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.AddEdge(a, b)
	}
	return g
}

// AssignLabels gives every node a label drawn uniformly from numLabels
// labels named "l0", "l1", .... It mirrors the paper's "labels are
// generated randomly" setup with 4 labels.
func AssignLabels(g *graph.Graph, numLabels int, seed int64) {
	if numLabels <= 0 {
		panic("gen: numLabels must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	for n := 0; n < g.NumNodes(); n++ {
		g.SetLabel(graph.NodeID(n), LabelName(rng.Intn(numLabels)))
	}
}

// LabelName returns the canonical name of the i-th synthetic label.
func LabelName(i int) string { return fmt.Sprintf("l%d", i) }

// AssignSigns marks every edge with a "sign" attribute ("+" or "-"); each
// edge is negative with probability pNeg. Used by the structural-balance
// example to build signed networks.
func AssignSigns(g *graph.Graph, pNeg float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for e := 0; e < g.NumEdges(); e++ {
		sign := "+"
		if rng.Float64() < pNeg {
			sign = "-"
		}
		g.SetEdgeAttr(graph.EdgeID(e), "sign", sign)
	}
}
