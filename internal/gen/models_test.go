package gen

import (
	"strconv"
	"testing"
	"testing/quick"

	"egocensus/internal/graph"
)

func assertSimple(t *testing.T, g *graph.Graph) {
	t.Helper()
	seen := map[[2]graph.NodeID]bool{}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.From == ed.To {
			t.Fatalf("self loop at edge %d", e)
		}
		a, b := ed.From, ed.To
		if !g.Directed() && a > b {
			a, b = b, a
		}
		if seen[[2]graph.NodeID{a, b}] {
			t.Fatalf("parallel edge %d-%d", a, b)
		}
		seen[[2]graph.NodeID{a, b}] = true
	}
}

func TestWattsStrogatzShape(t *testing.T) {
	g := WattsStrogatz(100, 3, 0, 1) // beta=0: pure ring lattice
	if g.NumNodes() != 100 || g.NumEdges() != 300 {
		t.Fatalf("lattice shape: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	for n := 0; n < g.NumNodes(); n++ {
		if g.Degree(graph.NodeID(n)) != 6 {
			t.Fatalf("lattice degree %d at node %d", g.Degree(graph.NodeID(n)), n)
		}
	}
	assertSimple(t, g)
}

func TestWattsStrogatzRewiring(t *testing.T) {
	lattice := WattsStrogatz(200, 2, 0, 5)
	rewired := WattsStrogatz(200, 2, 0.5, 5)
	assertSimple(t, rewired)
	if rewired.NumEdges() == 0 {
		t.Fatal("no edges after rewiring")
	}
	// Rewiring must change the edge set.
	diff := 0
	for e := 0; e < lattice.NumEdges() && e < rewired.NumEdges(); e++ {
		if lattice.Edge(graph.EdgeID(e)) != rewired.Edge(graph.EdgeID(e)) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("beta=0.5 should rewire some edges")
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 2k >= n")
		}
	}()
	WattsStrogatz(6, 3, 0.1, 1)
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(300, 0.1, 3)
	assertSimple(t, g)
	// Verify every edge respects the radius and positions are stored.
	pos := func(n graph.NodeID) (x, y float64) {
		xs, _ := g.NodeAttr(n, "x")
		ys, _ := g.NodeAttr(n, "y")
		x, _ = strconv.ParseFloat(xs, 64)
		y, _ = strconv.ParseFloat(ys, 64)
		return x, y
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		x1, y1 := pos(ed.From)
		x2, y2 := pos(ed.To)
		d2 := (x1-x2)*(x1-x2) + (y1-y2)*(y1-y2)
		if d2 > 0.1*0.1+1e-9 {
			t.Fatalf("edge %d spans distance^2 %v > r^2", e, d2)
		}
	}
	if g.NumEdges() == 0 {
		t.Fatal("geometric graph suspiciously empty")
	}
}

func TestRandomGeometricCompleteness(t *testing.T) {
	// Every pair within radius must be connected (grid search misses none).
	f := func(seed int64) bool {
		g := RandomGeometric(60, 0.2, seed)
		pos := make([][2]float64, g.NumNodes())
		for n := 0; n < g.NumNodes(); n++ {
			xs, _ := g.NodeAttr(graph.NodeID(n), "x")
			ys, _ := g.NodeAttr(graph.NodeID(n), "y")
			x, _ := strconv.ParseFloat(xs, 64)
			y, _ := strconv.ParseFloat(ys, 64)
			pos[n] = [2]float64{x, y}
		}
		for i := 0; i < g.NumNodes(); i++ {
			for j := i + 1; j < g.NumNodes(); j++ {
				dx := pos[i][0] - pos[j][0]
				dy := pos[i][1] - pos[j][1]
				// Stay away from the boundary: positions were rounded to 6
				// decimals on storage.
				if dx*dx+dy*dy < 0.2*0.2-1e-4 {
					if !g.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition(300, 3, 6, 1, 7)
	assertSimple(t, g)
	within, across := 0, 0
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if g.Label(ed.From) == g.Label(ed.To) {
			within++
		} else {
			across++
		}
	}
	if within <= 2*across {
		t.Fatalf("community structure weak: %d within vs %d across", within, across)
	}
	// Labels assigned round-robin.
	if g.LabelString(0) != "c0" || g.LabelString(1) != "c1" || g.LabelString(3) != "c0" {
		t.Fatal("community labels wrong")
	}
}

func TestDirectedPreferentialAttachment(t *testing.T) {
	g := DirectedPreferentialAttachment(500, 3, 9)
	if !g.Directed() {
		t.Fatal("should be directed")
	}
	assertSimple(t, g)
	// Every non-seed node has out-degree m.
	for v := 4; v < g.NumNodes(); v++ {
		if got := len(g.Out(graph.NodeID(v))); got != 3 {
			t.Fatalf("node %d out-degree %d want 3", v, got)
		}
	}
	// In-degree should be skewed toward early nodes.
	maxIn := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := len(g.In(graph.NodeID(v))); d > maxIn {
			maxIn = d
		}
	}
	if maxIn < 10 {
		t.Fatalf("in-degree skew too weak: max %d", maxIn)
	}
}

func TestItoa(t *testing.T) {
	for _, v := range []int{0, 1, 9, 10, 123, 99999} {
		if itoa(v) != strconv.Itoa(v) {
			t.Fatalf("itoa(%d) = %s", v, itoa(v))
		}
	}
}
