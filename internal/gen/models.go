package gen

import (
	"math/rand"
	"strconv"

	"egocensus/internal/graph"
)

// This file adds further standard graph models used for robustness tests
// and examples: Watts–Strogatz small worlds, random geometric graphs (the
// "geometric networks" of the paper's motif-counting references), planted
// community partitions, and a directed preferential-attachment variant for
// the brokerage workloads.

// WattsStrogatz generates an undirected small-world graph: a ring lattice
// of n nodes with k neighbors per side, each edge rewired with probability
// beta. Self loops and parallel edges are avoided by re-drawing; if no
// valid target exists the edge keeps its lattice endpoint.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	if n <= 0 || k <= 0 || 2*k >= n {
		panic("gen: WattsStrogatz requires 0 < 2k < n")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(false)
	g.AddNodes(n)
	has := make(map[[2]graph.NodeID]bool, n*k)
	addEdge := func(a, b graph.NodeID) bool {
		if a == b {
			return false
		}
		x, y := a, b
		if x > y {
			x, y = y, x
		}
		if has[[2]graph.NodeID{x, y}] {
			return false
		}
		has[[2]graph.NodeID{x, y}] = true
		g.AddEdge(x, y)
		return true
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			a := graph.NodeID(i)
			b := graph.NodeID((i + j) % n)
			if rng.Float64() < beta {
				rewired := false
				for attempt := 0; attempt < 20; attempt++ {
					c := graph.NodeID(rng.Intn(n))
					if addEdge(a, c) {
						rewired = true
						break
					}
				}
				if rewired {
					continue
				}
			}
			addEdge(a, b)
		}
	}
	return g
}

// RandomGeometric generates an undirected random geometric graph: n nodes
// placed uniformly in the unit square, edges between pairs within radius.
// Node positions are stored in the "x"/"y" attributes.
func RandomGeometric(n int, radius float64, seed int64) *graph.Graph {
	if n <= 0 || radius <= 0 {
		panic("gen: RandomGeometric requires positive n and radius")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(false)
	g.AddNodes(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
		g.SetNodeAttr(graph.NodeID(i), "x", formatFloat(xs[i]))
		g.SetNodeAttr(graph.NodeID(i), "y", formatFloat(ys[i]))
	}
	// Grid-bucketed neighbor search keeps this O(n) for constant density.
	cell := radius
	grid := map[[2]int][]int{}
	key := func(x, y float64) [2]int {
		return [2]int{int(x / cell), int(y / cell)}
	}
	for i := 0; i < n; i++ {
		k := key(xs[i], ys[i])
		grid[k] = append(grid[k], i)
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		k := key(xs[i], ys[i])
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{k[0] + dx, k[1] + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						g.AddEdge(graph.NodeID(i), graph.NodeID(j))
					}
				}
			}
		}
	}
	return g
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', 6, 64)
}

// PlantedPartition generates an undirected community-structured graph: n
// nodes in numCommunities equal groups, each node linking to degIn
// within-community and degOut cross-community partners on average.
// Community indices are stored as labels "c0", "c1", ....
func PlantedPartition(n, numCommunities, degIn, degOut int, seed int64) *graph.Graph {
	if n <= 0 || numCommunities <= 0 {
		panic("gen: PlantedPartition requires positive n and communities")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(false)
	g.AddNodes(n)
	comm := make([][]graph.NodeID, numCommunities)
	for i := 0; i < n; i++ {
		c := i % numCommunities
		comm[c] = append(comm[c], graph.NodeID(i))
		g.SetLabel(graph.NodeID(i), "c"+itoa(c))
	}
	has := map[[2]graph.NodeID]bool{}
	addEdge := func(a, b graph.NodeID) {
		if a == b {
			return
		}
		x, y := a, b
		if x > y {
			x, y = y, x
		}
		if has[[2]graph.NodeID{x, y}] {
			return
		}
		has[[2]graph.NodeID{x, y}] = true
		g.AddEdge(x, y)
	}
	for i := 0; i < n; i++ {
		c := i % numCommunities
		for e := 0; e < degIn; e++ {
			pool := comm[c]
			addEdge(graph.NodeID(i), pool[rng.Intn(len(pool))])
		}
		for e := 0; e < degOut; e++ {
			addEdge(graph.NodeID(i), graph.NodeID(rng.Intn(n)))
		}
	}
	return g
}

// DirectedPreferentialAttachment generates a directed graph where each new
// node points m edges at existing nodes chosen proportionally to in-degree
// plus one (a directed BA / Price model). Used by the brokerage workloads.
func DirectedPreferentialAttachment(n, m int, seed int64) *graph.Graph {
	if n <= 0 || m <= 0 {
		panic("gen: n and m must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(true)
	g.AddNodes(n)
	// targets: one entry per node (the +1 smoothing) plus one per received
	// edge.
	targets := make([]graph.NodeID, 0, n*(m+1))
	for i := 0; i < n && i <= m; i++ {
		targets = append(targets, graph.NodeID(i))
	}
	for v := 1; v < n; v++ {
		if v <= m {
			// Early nodes: connect to all predecessors.
			for u := 0; u < v; u++ {
				g.AddEdge(graph.NodeID(v), graph.NodeID(u))
				targets = append(targets, graph.NodeID(u))
			}
			targets = append(targets, graph.NodeID(v))
			continue
		}
		chosen := map[graph.NodeID]bool{}
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			if int(t) >= v || chosen[t] {
				continue
			}
			chosen[t] = true
		}
		// Deterministic order for reproducibility.
		for u := 0; u < v; u++ {
			if chosen[graph.NodeID(u)] {
				g.AddEdge(graph.NodeID(v), graph.NodeID(u))
				targets = append(targets, graph.NodeID(u))
			}
		}
		targets = append(targets, graph.NodeID(v))
	}
	return g
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
