package gen

import (
	"math/rand"
	"sort"

	"egocensus/internal/graph"
)

// CoauthConfig configures the temporal co-authorship generator, the
// repository's substitute for the paper's DBLP SIGMOD/VLDB/ICDE corpus.
type CoauthConfig struct {
	Authors        int     // total author population
	Communities    int     // research sub-areas; collaboration is community-biased
	StartYear      int     // first publication year (paper: 2001)
	EndYear        int     // last publication year, inclusive (paper: 2010)
	PapersPerYear  int     // papers generated per year
	MaxTeam        int     // maximum authors per paper (>= 2)
	ClosureProb    float64 // probability a coauthor is recruited by triadic closure
	RepeatProb     float64 // probability a coauthor is a previous collaborator
	CommunityBleed float64 // probability a random coauthor is drawn outside the lead's community
	Seed           int64
}

// DefaultCoauthConfig mirrors the scale of the paper's corpus: three
// database conferences over ten years, a few thousand active authors.
func DefaultCoauthConfig() CoauthConfig {
	return CoauthConfig{
		Authors:        3000,
		Communities:    12,
		StartYear:      2001,
		EndYear:        2010,
		PapersPerYear:  450,
		MaxTeam:        4,
		ClosureProb:    0.35,
		RepeatProb:     0.35,
		CommunityBleed: 0.08,
		Seed:           1,
	}
}

// Paper is one generated publication.
type Paper struct {
	Year    int
	Authors []int // author indices, sorted
}

// Coauthorship is a generated temporal co-authorship corpus.
type Coauthorship struct {
	Config CoauthConfig
	Papers []Paper
	// Community holds each author's community index.
	Community []int
}

// GenerateCoauthorship produces a corpus in which collaboration teams form
// through repeat collaboration and triadic closure — the mechanism that
// makes common-neighborhood census counts predictive of future links,
// mirroring the empirical behaviour the paper reports on DBLP.
func GenerateCoauthorship(cfg CoauthConfig) *Coauthorship {
	if cfg.Authors < cfg.MaxTeam || cfg.MaxTeam < 2 {
		panic("gen: invalid coauthorship config")
	}
	if cfg.Communities <= 0 {
		cfg.Communities = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Coauthorship{Config: cfg, Community: make([]int, cfg.Authors)}
	for a := range c.Community {
		c.Community[a] = rng.Intn(cfg.Communities)
	}
	byCommunity := make([][]int, cfg.Communities)
	for a, cm := range c.Community {
		byCommunity[cm] = append(byCommunity[cm], a)
	}

	// collab[a] lists a's past collaborators (with repetition: frequent
	// collaborators are more likely to be re-drawn).
	collab := make([][]int, cfg.Authors)
	// pubs holds one entry per authorship, so uniform sampling is
	// productivity-proportional (preferential attachment on activity).
	pubs := make([]int, 0, cfg.Authors)
	for a := 0; a < cfg.Authors; a++ {
		pubs = append(pubs, a) // everyone starts with weight 1
	}

	pickRandomSameCommunity := func(lead int) int {
		pool := byCommunity[c.Community[lead]]
		if rng.Float64() < cfg.CommunityBleed || len(pool) < 2 {
			return rng.Intn(cfg.Authors)
		}
		return pool[rng.Intn(len(pool))]
	}

	for year := cfg.StartYear; year <= cfg.EndYear; year++ {
		for p := 0; p < cfg.PapersPerYear; p++ {
			lead := pubs[rng.Intn(len(pubs))]
			team := map[int]bool{lead: true}
			size := 2 + rng.Intn(cfg.MaxTeam-1)
			for attempts := 0; len(team) < size && attempts < 20*size; attempts++ {
				var cand int
				r := rng.Float64()
				switch {
				case r < cfg.RepeatProb && len(collab[lead]) > 0:
					cand = collab[lead][rng.Intn(len(collab[lead]))]
				case r < cfg.RepeatProb+cfg.ClosureProb && len(collab[lead]) > 0:
					// Triadic closure: a collaborator of a collaborator.
					mid := collab[lead][rng.Intn(len(collab[lead]))]
					if len(collab[mid]) == 0 {
						cand = pickRandomSameCommunity(lead)
					} else {
						cand = collab[mid][rng.Intn(len(collab[mid]))]
					}
				default:
					cand = pickRandomSameCommunity(lead)
				}
				if team[cand] {
					continue
				}
				team[cand] = true
			}
			authors := make([]int, 0, len(team))
			for a := range team {
				authors = append(authors, a)
			}
			sort.Ints(authors)
			c.Papers = append(c.Papers, Paper{Year: year, Authors: authors})
			for i, a := range authors {
				pubs = append(pubs, a)
				for _, b := range authors[i+1:] {
					collab[a] = append(collab[a], b)
					collab[b] = append(collab[b], a)
				}
			}
		}
	}
	return c
}

// Graph builds the simple undirected co-authorship graph over papers
// published in years [from, to]. Every author appearing in that window
// becomes a node (attribute "author" = its corpus index, label = its
// community); an edge links each pair of co-authors. AuthorNode maps corpus
// author indices to node IDs.
func (c *Coauthorship) Graph(from, to int) (g *graph.Graph, authorNode map[int]graph.NodeID) {
	g = graph.New(false)
	authorNode = make(map[int]graph.NodeID)
	node := func(a int) graph.NodeID {
		if n, ok := authorNode[a]; ok {
			return n
		}
		n := g.AddNode()
		authorNode[a] = n
		g.SetLabel(n, LabelName(c.Community[a]))
		return n
	}
	seen := make(map[[2]graph.NodeID]bool)
	for _, p := range c.Papers {
		if p.Year < from || p.Year > to {
			continue
		}
		for i, a := range p.Authors {
			na := node(a)
			for _, b := range p.Authors[i+1:] {
				nb := node(b)
				x, y := na, nb
				if x > y {
					x, y = y, x
				}
				if seen[[2]graph.NodeID{x, y}] {
					continue
				}
				seen[[2]graph.NodeID{x, y}] = true
				g.AddEdge(x, y)
			}
		}
	}
	return g, authorNode
}

// NewPairs returns the set of author pairs that collaborate for the first
// time in years [from, to], i.e. pairs with a joint paper in the window but
// none before it. Pairs are keyed by sorted corpus author indices.
func (c *Coauthorship) NewPairs(from, to int) map[[2]int]bool {
	before := make(map[[2]int]bool)
	during := make(map[[2]int]bool)
	for _, p := range c.Papers {
		var dst map[[2]int]bool
		switch {
		case p.Year < from:
			dst = before
		case p.Year <= to:
			dst = during
		default:
			continue
		}
		for i, a := range p.Authors {
			for _, b := range p.Authors[i+1:] {
				dst[[2]int{a, b}] = true
			}
		}
	}
	for pair := range before {
		delete(during, pair)
	}
	return during
}
