package gen

import (
	"testing"
	"testing/quick"

	"egocensus/internal/graph"
)

func TestPreferentialAttachmentBasic(t *testing.T) {
	g := PreferentialAttachment(100, 5, 42)
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// seed clique (6 choose 2) + 94*5 edges
	want := 15 + 94*5
	if g.NumEdges() != want {
		t.Fatalf("edges = %d want %d", g.NumEdges(), want)
	}
}

func TestPreferentialAttachmentDeterministic(t *testing.T) {
	a := PreferentialAttachment(50, 3, 7)
	b := PreferentialAttachment(50, 3, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should give same graph")
	}
	for e := 0; e < a.NumEdges(); e++ {
		if a.Edge(graph.EdgeID(e)) != b.Edge(graph.EdgeID(e)) {
			t.Fatalf("edge %d differs", e)
		}
	}
	c := PreferentialAttachment(50, 3, 8)
	same := c.NumEdges() == a.NumEdges()
	if same {
		diff := false
		for e := 0; e < a.NumEdges(); e++ {
			if a.Edge(graph.EdgeID(e)) != c.Edge(graph.EdgeID(e)) {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestPreferentialAttachmentSimple(t *testing.T) {
	f := func(seed int64) bool {
		g := PreferentialAttachment(60, 4, seed)
		seen := map[[2]graph.NodeID]bool{}
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(graph.EdgeID(e))
			if ed.From == ed.To {
				return false // self loop
			}
			a, b := ed.From, ed.To
			if a > b {
				a, b = b, a
			}
			if seen[[2]graph.NodeID{a, b}] {
				return false // parallel edge
			}
			seen[[2]graph.NodeID{a, b}] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	g := PreferentialAttachment(2000, 5, 3)
	maxDeg := 0
	total := 0
	for n := 0; n < g.NumNodes(); n++ {
		d := g.Degree(graph.NodeID(n))
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(total) / float64(g.NumNodes())
	if float64(maxDeg) < 5*avg {
		t.Fatalf("expected heavy-tailed degrees: max %d avg %.1f", maxDeg, avg)
	}
}

func TestPreferentialAttachmentSmallN(t *testing.T) {
	g := PreferentialAttachment(3, 5, 1) // n <= m: just a clique on n nodes
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(50, 100, 9)
	if g.NumNodes() != 50 || g.NumEdges() != 100 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// capped at complete graph
	g2 := ErdosRenyi(5, 100, 9)
	if g2.NumEdges() != 10 {
		t.Fatalf("capped edges = %d want 10", g2.NumEdges())
	}
}

func TestAssignLabels(t *testing.T) {
	g := ErdosRenyi(200, 300, 1)
	AssignLabels(g, 4, 5)
	counts := map[string]int{}
	for n := 0; n < g.NumNodes(); n++ {
		l := g.LabelString(graph.NodeID(n))
		if l == "" {
			t.Fatal("node left unlabeled")
		}
		counts[l]++
	}
	if len(counts) != 4 {
		t.Fatalf("labels used = %v", counts)
	}
	for l, c := range counts {
		if c < 20 {
			t.Fatalf("label %s badly unbalanced: %d", l, c)
		}
	}
}

func TestAssignSigns(t *testing.T) {
	g := ErdosRenyi(100, 400, 2)
	AssignSigns(g, 0.3, 3)
	neg := 0
	for e := 0; e < g.NumEdges(); e++ {
		s, ok := g.EdgeAttr(graph.EdgeID(e), "sign")
		if !ok || (s != "+" && s != "-") {
			t.Fatalf("edge %d sign = %q ok=%v", e, s, ok)
		}
		if s == "-" {
			neg++
		}
	}
	frac := float64(neg) / float64(g.NumEdges())
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("negative fraction %.2f far from 0.3", frac)
	}
}

func TestCoauthorshipGeneration(t *testing.T) {
	cfg := DefaultCoauthConfig()
	cfg.Authors = 400
	cfg.PapersPerYear = 60
	c := GenerateCoauthorship(cfg)
	if len(c.Papers) != 60*10 {
		t.Fatalf("papers = %d", len(c.Papers))
	}
	for _, p := range c.Papers {
		if p.Year < 2001 || p.Year > 2010 {
			t.Fatalf("paper year %d out of range", p.Year)
		}
		if len(p.Authors) < 2 || len(p.Authors) > cfg.MaxTeam {
			t.Fatalf("team size %d", len(p.Authors))
		}
		for i := 1; i < len(p.Authors); i++ {
			if p.Authors[i] <= p.Authors[i-1] {
				t.Fatal("authors not sorted-unique")
			}
		}
	}
}

func TestCoauthorshipGraphWindow(t *testing.T) {
	cfg := DefaultCoauthConfig()
	cfg.Authors = 300
	cfg.PapersPerYear = 50
	c := GenerateCoauthorship(cfg)
	g, authorNode := c.Graph(2001, 2005)
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty train graph")
	}
	if g.NumNodes() != len(authorNode) {
		t.Fatal("authorNode inconsistent")
	}
	// Every train-window co-author pair must be an edge.
	for _, p := range c.Papers {
		if p.Year > 2005 {
			continue
		}
		for i, a := range p.Authors {
			for _, b := range p.Authors[i+1:] {
				if !g.HasEdge(authorNode[a], authorNode[b]) {
					t.Fatalf("missing edge for pair %d-%d", a, b)
				}
			}
		}
	}
}

func TestNewPairsExcludesOld(t *testing.T) {
	cfg := DefaultCoauthConfig()
	cfg.Authors = 300
	cfg.PapersPerYear = 50
	c := GenerateCoauthorship(cfg)
	oldPairs := map[[2]int]bool{}
	for _, p := range c.Papers {
		if p.Year > 2005 {
			continue
		}
		for i, a := range p.Authors {
			for _, b := range p.Authors[i+1:] {
				oldPairs[[2]int{a, b}] = true
			}
		}
	}
	newPairs := c.NewPairs(2006, 2010)
	if len(newPairs) == 0 {
		t.Fatal("no new pairs generated")
	}
	for pair := range newPairs {
		if oldPairs[pair] {
			t.Fatalf("pair %v already collaborated before window", pair)
		}
	}
}

func TestCoauthorshipClosureSignal(t *testing.T) {
	// New links should preferentially form between authors with common
	// neighbors in the train graph — the property the link-prediction
	// experiment depends on.
	cfg := DefaultCoauthConfig()
	cfg.Authors = 600
	cfg.PapersPerYear = 120
	c := GenerateCoauthorship(cfg)
	g, authorNode := c.Graph(2001, 2005)
	newPairs := c.NewPairs(2006, 2010)

	common := func(a, b graph.NodeID) int {
		na := map[graph.NodeID]bool{}
		for _, h := range g.Out(a) {
			na[h.To] = true
		}
		cnt := 0
		for _, h := range g.Out(b) {
			if na[h.To] {
				cnt++
			}
		}
		return cnt
	}

	withCommon, total := 0, 0
	for pair := range newPairs {
		na, oka := authorNode[pair[0]]
		nb, okb := authorNode[pair[1]]
		if !oka || !okb {
			continue
		}
		total++
		if common(na, nb) > 0 {
			withCommon++
		}
	}
	if total == 0 {
		t.Fatal("no evaluable new pairs")
	}
	frac := float64(withCommon) / float64(total)
	if frac < 0.15 {
		t.Fatalf("only %.2f of new links have common neighbors; closure signal too weak", frac)
	}
}
