package signature

import (
	"testing"
	"testing/quick"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/match"
	"egocensus/internal/pattern"
)

func TestBuildDefault(t *testing.T) {
	g := gen.PreferentialAttachment(100, 3, 1)
	idx, err := Build(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Sig) != 100 || len(idx.Sig[0]) != 4 {
		t.Fatalf("signature shape wrong: %d x %d", len(idx.Sig), len(idx.Sig[0]))
	}
	// node census at k=1 = degree + 1.
	for n := 0; n < g.NumNodes(); n++ {
		if idx.Sig[n][0] != int64(g.Degree(graph.NodeID(n))+1) {
			t.Fatalf("node %d signature[0] = %d want deg+1", n, idx.Sig[n][0])
		}
	}
}

func TestMonotoneValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 1)
	bad := pattern.New("neg")
	a := bad.MustAddNode("A", "")
	b := bad.MustAddNode("B", "")
	bad.MustAddEdge(a, b, false, false)
	c := bad.MustAddNode("C", "")
	bad.MustAddEdge(b, c, false, false)
	bad.MustAddEdge(a, c, false, true)
	if _, err := Build(g, Config{Patterns: []*pattern.Pattern{bad}}); err == nil {
		t.Fatal("negated signature pattern should be rejected")
	}
	pred := pattern.UnstableTriangle("u", 1)
	if _, err := Build(g, Config{Patterns: []*pattern.Pattern{pred}}); err == nil {
		t.Fatal("predicated signature pattern should be rejected")
	}
}

// The soundness property: signature pruning never removes a true match
// image. For every embedding found by CN, every query node's image must
// be in the pruned candidate set.
func TestPruningSoundProperty(t *testing.T) {
	queries := []func() *pattern.Pattern{
		func() *pattern.Pattern { return pattern.Clique("q_tri", 3, nil) },
		func() *pattern.Pattern { return pattern.Square("q_sqr", nil) },
		func() *pattern.Pattern { return pattern.Chain("q_ch4", 4, nil) },
		func() *pattern.Pattern { return pattern.Clique("q_k4", 4, nil) },
	}
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(25, 60, seed)
		gen.AssignLabels(g, 2, seed+1)
		idx, err := Build(g, Config{K: 1})
		if err != nil {
			t.Log(err)
			return false
		}
		for _, mk := range queries {
			q := mk()
			qsig, err := idx.QuerySignatures(q)
			if err != nil {
				t.Log(err)
				return false
			}
			cands := make([]map[graph.NodeID]bool, q.NumNodes())
			for v := 0; v < q.NumNodes(); v++ {
				cands[v] = map[graph.NodeID]bool{}
				for _, n := range idx.Candidates(g, q, qsig, v) {
					cands[v][n] = true
				}
			}
			for _, m := range match.FindMatches(match.CN{}, g, q) {
				for v, img := range m {
					if !cands[v][img] {
						t.Logf("seed %d query %s: image %d of node %d pruned away", seed, q.Name, img, v)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPruningIsEffective(t *testing.T) {
	// A hub-and-spoke graph has many nodes but few that can host a
	// triangle; the signature must prune the leaves.
	g := graph.New(false)
	hub := g.AddNode()
	for i := 0; i < 30; i++ {
		l := g.AddNode()
		g.AddEdge(hub, l)
	}
	// one triangle
	a, b := g.AddNode(), g.AddNode()
	g.AddEdge(hub, a)
	g.AddEdge(hub, b)
	g.AddEdge(a, b)

	idx, err := Build(g, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := pattern.Clique("tri", 3, nil)
	qsig, err := idx.QuerySignatures(q)
	if err != nil {
		t.Fatal(err)
	}
	c := idx.Candidates(g, q, qsig, 0)
	if len(c) != 3 {
		t.Fatalf("candidates = %d want 3 (hub + 2 triangle nodes), got %v", len(c), c)
	}
}

func TestSignatureMatcherEquivalence(t *testing.T) {
	g := gen.ErdosRenyi(30, 75, 9)
	gen.AssignLabels(g, 2, 10)
	idx, err := Build(g, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	sig := Matcher{Index: idx}
	if sig.Name() != "SIG+CN" {
		t.Fatalf("name = %s", sig.Name())
	}
	for _, q := range []*pattern.Pattern{
		pattern.Clique("tri", 3, nil),
		pattern.Clique("tril", 3, []string{"l0", "l0", "l1"}),
		pattern.Square("sqr", nil),
	} {
		want := match.FindMatches(match.CN{}, g, q)
		got := match.FindMatches(sig, g, q)
		if len(want) != len(got) {
			t.Fatalf("%s: %d vs %d matches", q.Name, len(got), len(want))
		}
	}
}

func TestSignatureMatcherShortCircuits(t *testing.T) {
	// A tree has no triangles; the signature proves it without search.
	g := graph.New(false)
	g.AddNodes(15)
	for i := 1; i < 15; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i-1)/2))
	}
	idx, err := Build(g, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	sig := Matcher{Index: idx}
	if got := sig.Embeddings(g, pattern.Clique("tri", 3, nil)); got != nil {
		t.Fatalf("tree should have no triangles, got %d", len(got))
	}
}

func TestDominates(t *testing.T) {
	if !Dominates([]int64{3, 2, 1}, []int64{3, 1, 0}) {
		t.Fatal("should dominate")
	}
	if Dominates([]int64{3, 2, 1}, []int64{3, 3, 0}) {
		t.Fatal("should not dominate")
	}
	if !Dominates([]int64{1, 2, 3}, nil) {
		t.Fatal("empty signature is always dominated")
	}
}
