// Package signature implements the paper's graph-indexing application
// (Section I): per-node census counts of a family of small patterns are
// treated as node signatures, and candidate sets for subgraph pattern
// matching are pruned by signature dominance — a query node v can only
// match a database node n whose signature dominates v's, because any
// embedding maps every structure in v's k-hop neighborhood injectively
// into n's.
//
// Soundness requires the signature patterns to be monotone: unlabeled or
// label-constrained structure only, no negated edges, no predicates
// (embeddings preserve structure and labels, and can only shrink
// distances). The constructors in this package only build such patterns.
package signature

import (
	"fmt"

	"egocensus/internal/core"
	"egocensus/internal/graph"
	"egocensus/internal/match"
	"egocensus/internal/pattern"
)

// Config selects the signature family.
type Config struct {
	// K is the neighborhood radius of the censuses (default 1).
	K int
	// Patterns is the signature pattern family; nil uses DefaultPatterns.
	// Patterns must be monotone (see package comment).
	Patterns []*pattern.Pattern
}

// DefaultPatterns is the standard signature family: node, edge, triangle,
// and 3-path counts.
func DefaultPatterns() []*pattern.Pattern {
	return []*pattern.Pattern{
		pattern.SingleNode("sig_node", ""),
		pattern.SingleEdge("sig_edge", nil),
		pattern.Clique("sig_tri", 3, nil),
		pattern.Chain("sig_path3", 3, nil),
	}
}

// Index holds the per-node signatures of a database graph.
type Index struct {
	cfg Config
	// Sig[n][i] is the count of pattern i in S(n, K).
	Sig [][]int64
}

// Build computes the signature index with one shared-traversal batch
// census (CountMany).
func Build(g *graph.Graph, cfg Config) (*Index, error) {
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.Patterns == nil {
		cfg.Patterns = DefaultPatterns()
	}
	if err := validateMonotone(cfg.Patterns); err != nil {
		return nil, err
	}
	specs := make([]core.Spec, len(cfg.Patterns))
	for i, p := range cfg.Patterns {
		specs[i] = core.Spec{Pattern: p, K: cfg.K}
	}
	results, err := core.CountMany(g, specs, core.Options{})
	if err != nil {
		return nil, err
	}
	idx := &Index{cfg: cfg, Sig: make([][]int64, g.NumNodes())}
	for n := 0; n < g.NumNodes(); n++ {
		row := make([]int64, len(results))
		for i, res := range results {
			row[i] = res.Counts[n]
		}
		idx.Sig[n] = row
	}
	return idx, nil
}

func validateMonotone(pats []*pattern.Pattern) error {
	for _, p := range pats {
		if err := p.Validate(); err != nil {
			return err
		}
		for _, e := range p.Edges() {
			if e.Negated {
				return fmt.Errorf("signature: pattern %s has a negated edge (not monotone)", p.Name)
			}
		}
		if len(p.Predicates()) > 0 {
			return fmt.Errorf("signature: pattern %s has predicates (not monotone)", p.Name)
		}
	}
	return nil
}

// QuerySignatures computes the signatures of every node of a query
// pattern's *structure graph*: the query's positive edges materialized as
// an unlabeled graph (labels are handled by the matcher's own label
// filter; including them here would also be sound but rarely prunes
// more). Returns one signature row per query node.
func (idx *Index) QuerySignatures(q *pattern.Pattern) ([][]int64, error) {
	qg := graph.New(false)
	qg.AddNodes(q.NumNodes())
	for _, e := range q.Edges() {
		if e.Negated {
			continue
		}
		qg.AddEdge(graph.NodeID(e.From), graph.NodeID(e.To))
	}
	specs := make([]core.Spec, len(idx.cfg.Patterns))
	for i, p := range idx.cfg.Patterns {
		specs[i] = core.Spec{Pattern: p, K: idx.cfg.K}
	}
	results, err := core.CountMany(qg, specs, core.Options{})
	if err != nil {
		return nil, err
	}
	out := make([][]int64, q.NumNodes())
	for v := 0; v < q.NumNodes(); v++ {
		row := make([]int64, len(results))
		for i, res := range results {
			row[i] = res.Counts[v]
		}
		out[v] = row
	}
	return out, nil
}

// Dominates reports whether signature a dominates b component-wise.
func Dominates(a, b []int64) bool {
	for i := range b {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// Candidates returns the database nodes whose signatures dominate query
// node v's — a superset of the nodes that can appear as v's image in any
// match (the pruning set for subgraph search). Label filtering is applied
// first when the query node is labeled.
func (idx *Index) Candidates(g *graph.Graph, q *pattern.Pattern, qsig [][]int64, v int) []graph.NodeID {
	want := q.Node(v).Label
	var out []graph.NodeID
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		if want != "" && g.LabelString(id) != want {
			continue
		}
		if Dominates(idx.Sig[n], qsig[v]) {
			out = append(out, id)
		}
	}
	return out
}

// Matcher wraps an exact matcher with signature pre-filtering: embeddings
// are searched only among signature-dominating candidates. It implements
// match.Matcher.
type Matcher struct {
	Index *Index
	// Inner is the exact matcher (default CN).
	Inner match.Matcher
}

// Name implements match.Matcher.
func (m Matcher) Name() string { return "SIG+" + m.inner().Name() }

func (m Matcher) inner() match.Matcher {
	if m.Inner == nil {
		return match.CN{}
	}
	return m.Inner
}

// Embeddings implements match.Matcher: it verifies candidate survival for
// every query node first (an empty pruned set proves zero matches without
// running the inner matcher), then delegates. The signature check is a
// pure pre-filter, so results equal the inner matcher's.
func (m Matcher) Embeddings(g *graph.Graph, p *pattern.Pattern) []pattern.Match {
	if m.Index != nil && p.NumNodes() > 0 {
		qsig, err := m.Index.QuerySignatures(p)
		if err == nil {
			for v := 0; v < p.NumNodes(); v++ {
				if len(m.Index.Candidates(g, p, qsig, v)) == 0 {
					return nil
				}
			}
		}
	}
	return m.inner().Embeddings(g, p)
}
