package stats

import (
	"math"
	"testing"
	"testing/quick"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
)

func triangleWithTail() *graph.Graph {
	// Triangle 0-1-2 plus tail 2-3.
	g := graph.New(false)
	g.AddNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	return g
}

func TestDegreeHistogram(t *testing.T) {
	g := triangleWithTail()
	hist := DegreeHistogram(g)
	// degrees: 2,2,3,1
	want := []int{0, 1, 2, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v", hist)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist[%d] = %d want %d", i, hist[i], want[i])
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := triangleWithTail()
	st := Degrees(g)
	if st.Min != 1 || st.Max != 3 || st.Mean != 2 || st.Median != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := Degrees(graph.New(false)); got != (DegreeStats{}) {
		t.Fatal("empty graph stats should be zero")
	}
}

func TestLocalClustering(t *testing.T) {
	g := triangleWithTail()
	c := LocalClustering(g)
	// Node 0: neighbors {1,2}, connected: 1.0. Node 2: neighbors {0,1,3},
	// one of three pairs connected: 1/3. Node 3: degree 1: 0.
	if c[0] != 1 || c[1] != 1 {
		t.Fatalf("c0,c1 = %v,%v", c[0], c[1])
	}
	if math.Abs(c[2]-1.0/3) > 1e-12 {
		t.Fatalf("c2 = %v", c[2])
	}
	if c[3] != 0 {
		t.Fatalf("c3 = %v", c[3])
	}
	wantGlobal := (1 + 1 + 1.0/3 + 0) / 4
	if math.Abs(GlobalClustering(g)-wantGlobal) > 1e-12 {
		t.Fatalf("global = %v", GlobalClustering(g))
	}
}

func TestComponents(t *testing.T) {
	g := triangleWithTail()
	g.AddNodes(2)
	g.AddEdge(4, 5)
	comp, sizes := Components(g)
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
	if comp[0] != 0 || comp[3] != 0 || comp[4] != 1 || comp[5] != 1 {
		t.Fatalf("comp = %v", comp)
	}
}

func TestComponentsOrderedBySize(t *testing.T) {
	g := graph.New(false)
	g.AddNodes(5)
	g.AddEdge(0, 1) // size-2 component first in discovery order
	g.AddEdge(2, 3)
	g.AddEdge(3, 4) // size-3 component second
	_, sizes := Components(g)
	if sizes[0] != 3 || sizes[1] != 2 {
		t.Fatalf("sizes = %v (must be decreasing)", sizes)
	}
}

func TestEstimateDiameter(t *testing.T) {
	g := graph.New(false)
	g.AddNodes(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	if d := EstimateDiameter(g, 6); d != 5 {
		t.Fatalf("path diameter = %d want 5", d)
	}
	if d := EstimateDiameter(g, 1); d < 1 || d > 5 {
		t.Fatalf("sampled diameter = %d", d)
	}
	if EstimateDiameter(graph.New(false), 3) != 0 {
		t.Fatal("empty graph diameter should be 0")
	}
}

func TestCoreNumbers(t *testing.T) {
	g := triangleWithTail()
	core := CoreNumbers(g)
	want := []int{2, 2, 2, 1}
	for i := range want {
		if core[i] != want[i] {
			t.Fatalf("core = %v want %v", core, want)
		}
	}
}

func TestCoreNumbersClique(t *testing.T) {
	g := graph.New(false)
	g.AddNodes(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	l := g.AddNode()
	g.AddEdge(0, l)
	core := CoreNumbers(g)
	for i := 0; i < 5; i++ {
		if core[i] != 4 {
			t.Fatalf("clique core = %v", core)
		}
	}
	if core[l] != 1 {
		t.Fatalf("leaf core = %d", core[l])
	}
}

// Property: core numbers are valid — every node has at least core[n]
// neighbors with core >= core[n].
func TestCoreNumbersProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(40, 90, seed)
		core := CoreNumbers(g)
		for n := 0; n < g.NumNodes(); n++ {
			cnt := 0
			for _, h := range g.Out(graph.NodeID(n)) {
				if core[h.To] >= core[n] {
					cnt++
				}
			}
			if cnt < core[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawExponentOnBA(t *testing.T) {
	g := gen.PreferentialAttachment(20000, 5, 7)
	alpha := PowerLawExponent(g, 10)
	if alpha < 2.2 || alpha > 3.8 {
		t.Fatalf("BA exponent = %.2f, expected near 3", alpha)
	}
	if PowerLawExponent(graph.New(false), 1) != 0 {
		t.Fatal("empty graph should give 0")
	}
}

func TestDirectedStats(t *testing.T) {
	g := graph.New(true)
	a, b, c := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, a)
	cl := LocalClustering(g)
	for i, v := range cl {
		if v != 1 {
			t.Fatalf("directed triangle clustering[%d] = %v", i, v)
		}
	}
	core := CoreNumbers(g)
	for _, v := range core {
		if v != 2 {
			t.Fatalf("directed triangle core = %v", core)
		}
	}
}
