// Package stats computes the global (socio-centric) network statistics the
// paper contrasts ego-centric analysis against (Section I / VI): degree
// distributions, clustering coefficients, connected components, core
// numbers, and sampled diameter estimates. The examples and experiment
// harness use it to characterize generated workloads, and the clustering
// coefficient doubles as an independent check of the census reductions.
package stats

import (
	"math"
	"sort"

	"egocensus/internal/graph"
)

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func DegreeHistogram(g *graph.Graph) []int {
	maxDeg := 0
	degs := make([]int, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		d := g.Degree(graph.NodeID(n))
		degs[n] = d
		if d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for _, d := range degs {
		hist[d]++
	}
	return hist
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Median   float64
}

// Degrees computes summary statistics of the degree distribution.
func Degrees(g *graph.Graph) DegreeStats {
	n := g.NumNodes()
	if n == 0 {
		return DegreeStats{}
	}
	degs := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		degs[i] = g.Degree(graph.NodeID(i))
		total += degs[i]
	}
	sort.Ints(degs)
	st := DegreeStats{
		Min:  degs[0],
		Max:  degs[n-1],
		Mean: float64(total) / float64(n),
	}
	if n%2 == 1 {
		st.Median = float64(degs[n/2])
	} else {
		st.Median = float64(degs[n/2-1]+degs[n/2]) / 2
	}
	return st
}

// LocalClustering returns each node's local clustering coefficient: the
// fraction of its neighbor pairs that are connected. Nodes with degree < 2
// have coefficient 0. Direction is ignored.
func LocalClustering(g *graph.Graph) []float64 {
	out := make([]float64, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		nbrs := g.Neighbors(id)
		k := len(nbrs)
		if k < 2 {
			continue
		}
		links := 0
		set := make(map[graph.NodeID]bool, k)
		for _, m := range nbrs {
			set[m] = true
		}
		for _, m := range nbrs {
			for _, h := range g.Out(m) {
				if h.To != id && set[h.To] {
					links++
				}
			}
			if g.Directed() {
				for _, h := range g.In(m) {
					if h.To != id && set[h.To] {
						links++
					}
				}
			}
		}
		// Each neighbor-neighbor edge was seen from both endpoints (or
		// twice via out+in for reciprocal pairs in directed graphs).
		out[n] = float64(links) / 2 / (float64(k) * float64(k-1) / 2)
	}
	return out
}

// GlobalClustering returns the mean local clustering coefficient (the
// Watts–Strogatz average).
func GlobalClustering(g *graph.Graph) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range LocalClustering(g) {
		sum += c
	}
	return sum / float64(g.NumNodes())
}

// Components labels connected components (direction ignored): comp[n] is
// the component index of node n, and sizes[i] the size of component i,
// largest first. Component indices are ordered by decreasing size.
func Components(g *graph.Graph) (comp []int, sizes []int) {
	n := g.NumNodes()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var rawSizes []int
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		idx := len(rawSizes)
		size := 0
		g.BFS(graph.NodeID(i), -1, func(m graph.NodeID, _ int) bool {
			comp[m] = idx
			size++
			return true
		})
		rawSizes = append(rawSizes, size)
	}
	// Relabel components by decreasing size.
	order := make([]int, len(rawSizes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rawSizes[order[a]] > rawSizes[order[b]] })
	rank := make([]int, len(rawSizes))
	for r, old := range order {
		rank[old] = r
	}
	for i := range comp {
		comp[i] = rank[comp[i]]
	}
	sizes = make([]int, len(rawSizes))
	for old, r := range rank {
		sizes[r] = rawSizes[old]
	}
	return comp, sizes
}

// EstimateDiameter lower-bounds the diameter by running BFS from samples
// nodes (deterministically spread over the node range) and taking the
// largest finite eccentricity seen.
func EstimateDiameter(g *graph.Graph, samples int) int {
	n := g.NumNodes()
	if n == 0 || samples <= 0 {
		return 0
	}
	if samples > n {
		samples = n
	}
	best := 0
	for s := 0; s < samples; s++ {
		src := graph.NodeID(s * n / samples)
		ecc := 0
		g.BFS(src, -1, func(_ graph.NodeID, d int) bool {
			if d > ecc {
				ecc = d
			}
			return true
		})
		if ecc > best {
			best = ecc
		}
	}
	return best
}

// CoreNumbers computes the k-core decomposition (direction ignored):
// core[n] is the largest k such that n belongs to a subgraph of minimum
// degree k. Linear-time bucket algorithm (Batagelj–Zaveršnik).
func CoreNumbers(g *graph.Graph) []int {
	n := g.NumNodes()
	deg := make([]int, n)
	maxDeg := 0
	for i := 0; i < n; i++ {
		deg[i] = len(distinctUndirected(g, graph.NodeID(i)))
		if deg[i] > maxDeg {
			maxDeg = deg[i]
		}
	}
	// Bucket sort nodes by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for i := 1; i < len(binStart); i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int, n)
	vert := make([]int, n)
	fill := append([]int(nil), binStart...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}
	core := append([]int(nil), deg...)
	cur := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = cur[v]
		for _, u := range distinctUndirected(g, graph.NodeID(v)) {
			ui := int(u)
			if cur[ui] > cur[v] {
				// Move u one bucket down: swap with the first node of its
				// current bucket.
				du := cur[ui]
				pu := pos[ui]
				pw := binStart[du]
				w := vert[pw]
				if ui != w {
					vert[pu], vert[pw] = w, ui
					pos[ui], pos[w] = pw, pu
				}
				binStart[du]++
				cur[ui]--
			}
		}
	}
	return core
}

func distinctUndirected(g *graph.Graph, n graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	add := func(m graph.NodeID) {
		if m != n && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	for _, h := range g.Out(n) {
		add(h.To)
	}
	if g.Directed() {
		for _, h := range g.In(n) {
			add(h.To)
		}
	}
	return out
}

// PowerLawExponent fits alpha of P(d) ~ d^-alpha over degrees >= dmin with
// the discrete maximum-likelihood estimator; returns 0 when fewer than two
// qualifying nodes exist. Preferential-attachment graphs should fit
// alpha ~= 3.
func PowerLawExponent(g *graph.Graph, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	count := 0
	sum := 0.0
	for n := 0; n < g.NumNodes(); n++ {
		d := g.Degree(graph.NodeID(n))
		if d >= dmin {
			count++
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
		}
	}
	if count < 2 || sum == 0 {
		return 0
	}
	return 1 + float64(count)/sum
}
