package linkpred

import (
	"math"
	"testing"

	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
)

func TestMeasuresEnumeration(t *testing.T) {
	ms := Measures()
	if len(ms) != 9 {
		t.Fatalf("measures = %d want 9", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Name] {
			t.Fatalf("duplicate measure %s", m.Name)
		}
		seen[m.Name] = true
		p := m.Pattern()
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
	if !seen["node@2"] || !seen["triangle@3"] || !seen["edge@1"] {
		t.Fatalf("expected canonical names, got %v", seen)
	}
}

func TestJaccardHandComputed(t *testing.T) {
	// Path 0-1-2 plus edge 0-2 would be a triangle; use a square 0-1-2-3.
	g := graph.New(false)
	g.AddNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	scores := Jaccard(g)
	// Nodes 0 and 2 share neighbors {1, 3}: J = 2 / (2+2-2) = 1.
	if got := scores[core.MakePair(0, 2)]; math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("J(0,2) = %v want 1", got)
	}
	// Nodes 0 and 1 share no neighbors: absent.
	if _, ok := scores[core.MakePair(0, 1)]; ok {
		t.Fatal("J(0,1) should be unscored (no common neighbors)")
	}
}

func TestJaccardAgainstDirectComputation(t *testing.T) {
	g := gen.ErdosRenyi(30, 70, 5)
	scores := Jaccard(g)
	for a := 0; a < g.NumNodes(); a++ {
		for b := a + 1; b < g.NumNodes(); b++ {
			na := g.Neighbors(graph.NodeID(a))
			nb := g.Neighbors(graph.NodeID(b))
			set := map[graph.NodeID]bool{}
			for _, x := range na {
				set[x] = true
			}
			common := 0
			for _, x := range nb {
				if set[x] {
					common++
				}
			}
			want := 0.0
			if common > 0 {
				want = float64(common) / float64(len(na)+len(nb)-common)
			}
			got := scores[core.MakePair(graph.NodeID(a), graph.NodeID(b))]
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("J(%d,%d) = %v want %v", a, b, got, want)
			}
		}
	}
}

func TestScoreMatchesEngineSemantics(t *testing.T) {
	g := gen.ErdosRenyi(15, 35, 7)
	m := Measure{Name: "node@1", Structure: "node", R: 1}
	scores, err := m.Score(g, core.PTOpt, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for pr, s := range scores {
		want := float64(g.EgoIntersection(pr.A, pr.B, 1).G.NumNodes())
		if s != want {
			t.Fatalf("pair %v score %v want %v", pr, s, want)
		}
	}
}

func TestPrecisionAtK(t *testing.T) {
	g := graph.New(false)
	g.AddNodes(6)
	g.AddEdge(0, 1) // existing link: must be skipped in ranking
	e := &Eval{
		Train: g,
		Positives: map[core.Pair]bool{
			core.MakePair(2, 3): true,
			core.MakePair(4, 5): true,
		},
	}
	scores := map[core.Pair]float64{
		core.MakePair(0, 1): 100, // existing edge: skipped
		core.MakePair(2, 3): 10,  // hit
		core.MakePair(1, 4): 5,   // miss
		core.MakePair(4, 5): 3,   // hit
	}
	if got := e.PrecisionAtK(scores, 1); got != 1.0 {
		t.Fatalf("P@1 = %v want 1", got)
	}
	if got := e.PrecisionAtK(scores, 2); got != 0.5 {
		t.Fatalf("P@2 = %v want 0.5", got)
	}
	if got := e.PrecisionAtK(scores, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("P@3 = %v want 2/3", got)
	}
	// Fewer candidates than K: denominator stays K.
	if got := e.PrecisionAtK(scores, 10); got != 0.2 {
		t.Fatalf("P@10 = %v want 0.2", got)
	}
	if got := e.PrecisionAtK(scores, 0); got != 0 {
		t.Fatalf("P@0 = %v want 0", got)
	}
}

func TestPrecisionDeterministicTieBreak(t *testing.T) {
	g := graph.New(false)
	g.AddNodes(10)
	e := &Eval{Train: g, Positives: map[core.Pair]bool{core.MakePair(0, 1): true}}
	scores := map[core.Pair]float64{}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			scores[core.MakePair(graph.NodeID(a), graph.NodeID(b))] = 1.0 // all tied
		}
	}
	p1 := e.PrecisionAtK(scores, 3)
	p2 := e.PrecisionAtK(scores, 3)
	if p1 != p2 {
		t.Fatal("tie-break should be deterministic")
	}
	// Pair (0,1) sorts first among ties, so P@3 includes the positive.
	if p1 != 1.0/3 {
		t.Fatalf("P@3 = %v want 1/3", p1)
	}
}

func TestRandomScores(t *testing.T) {
	g := gen.ErdosRenyi(20, 30, 9)
	scores := RandomScores(g, 50, 3)
	if len(scores) != 50 {
		t.Fatalf("pairs = %d want 50", len(scores))
	}
	for pr := range scores {
		if pr.A == pr.B {
			t.Fatal("self pair generated")
		}
	}
	if len(RandomScores(graph.New(false), 10, 1)) != 0 {
		t.Fatal("empty graph should yield no pairs")
	}
}

func TestEndToEndOnCoauthorship(t *testing.T) {
	cfg := gen.DefaultCoauthConfig()
	cfg.Authors = 500
	cfg.PapersPerYear = 90
	corpus := gen.GenerateCoauthorship(cfg)
	train, authorNode := corpus.Graph(2001, 2005)
	positives := map[core.Pair]bool{}
	for pair := range corpus.NewPairs(2006, 2010) {
		na, oka := authorNode[pair[0]]
		nb, okb := authorNode[pair[1]]
		if oka && okb {
			positives[core.MakePair(na, nb)] = true
		}
	}
	if len(positives) < 20 {
		t.Fatalf("too few positives to evaluate: %d", len(positives))
	}
	e := &Eval{Train: train, Positives: positives}

	m := Measure{Name: "node@2", Structure: "node", R: 2}
	scores, err := m.Score(train, core.PTOpt, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pAt50 := e.PrecisionAtK(scores, 50)

	rnd := RandomScores(train, len(scores), 7)
	pRnd := e.PrecisionAtK(rnd, 50)

	if pAt50 <= pRnd {
		t.Fatalf("common-neighbor measure (%.3f) should beat random (%.3f)", pAt50, pRnd)
	}
	if pAt50 == 0 {
		t.Fatal("node@2 precision should be positive on closure-driven corpus")
	}
}

func TestAUCHandComputed(t *testing.T) {
	g := graph.New(false)
	g.AddNodes(8)
	e := &Eval{Train: g, Positives: map[core.Pair]bool{
		core.MakePair(0, 1): true,
		core.MakePair(2, 3): true,
	}}
	// Perfect ranking: positives above negatives.
	perfect := map[core.Pair]float64{
		core.MakePair(0, 1): 10,
		core.MakePair(2, 3): 9,
		core.MakePair(4, 5): 1,
		core.MakePair(6, 7): 0.5,
	}
	if got := e.AUC(perfect); got != 1.0 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Inverted ranking.
	inverted := map[core.Pair]float64{
		core.MakePair(0, 1): 0.1,
		core.MakePair(2, 3): 0.2,
		core.MakePair(4, 5): 5,
		core.MakePair(6, 7): 6,
	}
	if got := e.AUC(inverted); got != 0.0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All tied: 0.5.
	tied := map[core.Pair]float64{
		core.MakePair(0, 1): 1,
		core.MakePair(2, 3): 1,
		core.MakePair(4, 5): 1,
		core.MakePair(6, 7): 1,
	}
	if got := e.AUC(tied); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Degenerate: no negatives.
	if got := e.AUC(map[core.Pair]float64{core.MakePair(0, 1): 1}); got != 0.5 {
		t.Fatalf("degenerate AUC = %v", got)
	}
}

func TestAUCExcludesTrainEdgesAndAddsUnscoredPositives(t *testing.T) {
	g := graph.New(false)
	g.AddNodes(6)
	g.AddEdge(0, 1) // existing edge: excluded even if scored
	e := &Eval{Train: g, Positives: map[core.Pair]bool{
		core.MakePair(2, 3): true, // unscored positive -> rank at 0
	}}
	scores := map[core.Pair]float64{
		core.MakePair(0, 1): 100, // must be ignored
		core.MakePair(4, 5): 1,   // negative above the unscored positive
	}
	if got := e.AUC(scores); got != 0.0 {
		t.Fatalf("AUC = %v want 0 (positive ranked below negative)", got)
	}
}

func TestAUCBetterOnCoauthorship(t *testing.T) {
	cfg := gen.DefaultCoauthConfig()
	cfg.Authors, cfg.PapersPerYear = 400, 70
	corpus := gen.GenerateCoauthorship(cfg)
	train, authorNode := corpus.Graph(2001, 2005)
	positives := map[core.Pair]bool{}
	for pr := range corpus.NewPairs(2006, 2010) {
		na, oka := authorNode[pr[0]]
		nb, okb := authorNode[pr[1]]
		if oka && okb {
			positives[core.MakePair(na, nb)] = true
		}
	}
	e := &Eval{Train: train, Positives: positives}
	m := Measure{Name: "node@2", Structure: "node", R: 2}
	scores, err := m.Score(train, core.PTOpt, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	auc := e.AUC(scores)
	if auc <= 0.5 {
		t.Fatalf("census measure AUC = %.3f, should beat chance", auc)
	}
}
