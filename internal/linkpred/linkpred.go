// Package linkpred implements the paper's real-world experiment (Section
// V-B): predicting future collaborations from a co-authorship graph. Nine
// pairwise census measures — counts of nodes, edges and triangles in the
// common (intersected) 1-, 2- and 3-hop neighborhoods of each author pair
// — are compared against the Jaccard coefficient and a random predictor by
// precision@K.
package linkpred

import (
	"fmt"
	"math/rand"
	"sort"

	"egocensus/internal/core"
	"egocensus/internal/graph"
	"egocensus/internal/pattern"
)

// Measure is one pairwise census configuration: a structure counted in the
// common r-hop neighborhood.
type Measure struct {
	// Name is e.g. "node@2" (common nodes within 2 hops).
	Name string
	// Structure is "node", "edge" or "triangle".
	Structure string
	// R is the neighborhood radius.
	R int
}

// Measures returns the paper's nine configurations: {node, edge, triangle}
// x {1, 2, 3} hops.
func Measures() []Measure {
	var out []Measure
	for _, s := range []string{"node", "edge", "triangle"} {
		for r := 1; r <= 3; r++ {
			out = append(out, Measure{
				Name:      fmt.Sprintf("%s@%d", s, r),
				Structure: s,
				R:         r,
			})
		}
	}
	return out
}

// Pattern builds the measure's structure pattern.
func (m Measure) Pattern() *pattern.Pattern {
	switch m.Structure {
	case "node":
		return pattern.SingleNode("single_node", "")
	case "edge":
		return pattern.SingleEdge("single_edge", nil)
	case "triangle":
		return pattern.Clique("triangle", 3, nil)
	}
	panic(fmt.Sprintf("linkpred: unknown structure %q", m.Structure))
}

// Score runs the pairwise census for the measure with the given algorithm
// and returns the per-pair counts (only non-zero pairs appear). This is
// exactly the query
//
//	SELECT n1.ID, n2.ID, COUNTP(struct,
//	       SUBGRAPH-INTERSECTION(n1.ID, n2.ID, r))
//	FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID
func (m Measure) Score(g *graph.Graph, alg core.Algorithm, opt core.Options) (map[core.Pair]float64, error) {
	spec := core.PairSpec{
		Spec: core.Spec{Pattern: m.Pattern(), K: m.R},
		Mode: core.Intersection,
	}
	res, err := core.CountPairs(g, spec, alg, opt)
	if err != nil {
		return nil, err
	}
	scores := make(map[core.Pair]float64, len(res.Counts))
	for pr, c := range res.Counts {
		scores[pr] = float64(c)
	}
	return scores, nil
}

// Jaccard computes the Jaccard coefficient |N(a) ∩ N(b)| / |N(a) ∪ N(b)|
// over immediate neighborhoods, for all pairs with at least one common
// neighbor (other pairs score zero and are never ranked).
func Jaccard(g *graph.Graph) map[core.Pair]float64 {
	scores := make(map[core.Pair]float64)
	inter := make(map[core.Pair]int)
	for n := 0; n < g.NumNodes(); n++ {
		// Every pair of neighbors of n has n as a common neighbor.
		nbrs := g.Neighbors(graph.NodeID(n))
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				inter[core.MakePair(nbrs[i], nbrs[j])]++
			}
		}
	}
	for pr, common := range inter {
		union := g.Degree(pr.A) + g.Degree(pr.B) - common
		if union > 0 {
			scores[pr] = float64(common) / float64(union)
		}
	}
	return scores
}

// RandomScores assigns uniform random scores to numPairs random distinct
// node pairs — the random predictor baseline.
func RandomScores(g *graph.Graph, numPairs int, seed int64) map[core.Pair]float64 {
	rng := rand.New(rand.NewSource(seed))
	scores := make(map[core.Pair]float64, numPairs)
	n := g.NumNodes()
	if n < 2 {
		return scores
	}
	for len(scores) < numPairs {
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		pr := core.MakePair(a, b)
		if _, dup := scores[pr]; dup {
			continue
		}
		scores[pr] = rng.Float64()
	}
	return scores
}

// Eval holds a link-prediction evaluation context: the training graph and
// the ground-truth positives.
type Eval struct {
	// Train is the graph observed during the training window.
	Train *graph.Graph
	// Positives holds the pairs that form a new link in the test window.
	Positives map[core.Pair]bool
}

// PrecisionAtK ranks the scored pairs (score descending, pair ascending
// for determinism), skips pairs already linked in the training graph, and
// returns the fraction of the top K that are true positives. When fewer
// than K candidate pairs exist, the denominator stays K (missing
// predictions count as wrong), matching the paper's definition of
// "correct predictions divided by K".
func (e *Eval) PrecisionAtK(scores map[core.Pair]float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	type scored struct {
		pr    core.Pair
		score float64
	}
	ranked := make([]scored, 0, len(scores))
	for pr, s := range scores {
		if e.Train.HasEdge(pr.A, pr.B) {
			continue // existing collaboration: not a prediction
		}
		ranked = append(ranked, scored{pr, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		if ranked[i].pr.A != ranked[j].pr.A {
			return ranked[i].pr.A < ranked[j].pr.A
		}
		return ranked[i].pr.B < ranked[j].pr.B
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	correct := 0
	for _, s := range ranked {
		if e.Positives[s.pr] {
			correct++
		}
	}
	return float64(correct) / float64(k)
}

// AUC estimates the area under the ROC curve of a scoring: the probability
// that a uniformly random positive candidate pair outranks a uniformly
// random negative one (ties count half). Candidates are the scored pairs
// not already linked in the training graph; unscored positives participate
// with score zero, matching their effective rank. Returns 0.5 when either
// class is empty.
func (e *Eval) AUC(scores map[core.Pair]float64) float64 {
	type scored struct {
		s   float64
		pos bool
	}
	var all []scored
	seen := map[core.Pair]bool{}
	for pr, s := range scores {
		if e.Train.HasEdge(pr.A, pr.B) {
			continue
		}
		seen[pr] = true
		all = append(all, scored{s, e.Positives[pr]})
	}
	for pr := range e.Positives {
		if !seen[pr] && !e.Train.HasEdge(pr.A, pr.B) {
			all = append(all, scored{0, true})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	var pos, neg, rankSum float64
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].s == all[i].s {
			j++
		}
		// average rank of the tie group (1-based ranks)
		avgRank := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if all[k].pos {
				pos++
				rankSum += avgRank
			} else {
				neg++
			}
		}
		i = j
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	// Mann-Whitney U statistic.
	u := rankSum - pos*(pos+1)/2
	return u / (pos * neg)
}
