package egocensus_test

import (
	"fmt"

	"egocensus"
)

// A small fixed graph used by the examples: two triangles sharing the edge
// 1-2, plus a pendant node.
//
//	0 - 1 - 3
//	 \ / \ /
//	  2---+     4 (attached to 3)
func exampleGraph() *egocensus.Graph {
	g := egocensus.NewGraph(false)
	for i := 0; i < 5; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	return g
}

// ExampleEngine_Execute runs a triangle census in the declarative
// language.
func ExampleEngine_Execute() {
	g := exampleGraph()
	e := egocensus.NewEngine(g)
	tables, err := e.Execute(`
		PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
		SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		panic(err)
	}
	for _, row := range tables[0].TypedRows {
		fmt.Printf("node %d: %d\n", row.Focal[0], row.Count)
	}
	// Output:
	// node 0: 1
	// node 1: 2
	// node 2: 2
	// node 3: 1
	// node 4: 0
}

// ExampleCount evaluates the same census through the direct API with an
// explicit algorithm.
func ExampleCount() {
	g := exampleGraph()
	spec := egocensus.Spec{Pattern: egocensus.CliquePattern("tri", 3, nil), K: 2}
	res, err := egocensus.Count(g, spec, egocensus.PTOpt, egocensus.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("global matches:", res.NumMatches)
	fmt.Println("node 4 sees:", res.Counts[4])
	// Output:
	// global matches: 2
	// node 4 sees: 1
}

// ExampleCountPairs counts common nodes in two egos' 1-hop neighborhoods
// (the intersection census behind the Jaccard coefficient).
func ExampleCountPairs() {
	g := exampleGraph()
	spec := egocensus.PairSpec{
		Spec: egocensus.Spec{Pattern: egocensus.SingleNodePattern("n", ""), K: 1},
		Mode: egocensus.Intersection,
	}
	res, err := egocensus.CountPairs(g, spec, egocensus.PTOpt, egocensus.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("common(0,3):", res.Counts[egocensus.MakePair(0, 3)])
	// Output:
	// common(0,3): 2
}

// ExampleTopK ranks nodes by their census counts.
func ExampleTopK() {
	g := exampleGraph()
	spec := egocensus.Spec{Pattern: egocensus.CliquePattern("tri", 3, nil), K: 1}
	top, err := egocensus.TopK(g, spec, 2, egocensus.NDPvot, egocensus.Options{})
	if err != nil {
		panic(err)
	}
	for _, nc := range top {
		fmt.Printf("node %d: %d\n", nc.Node, nc.Count)
	}
	// Output:
	// node 1: 2
	// node 2: 2
}

// ExampleNewIncremental maintains counts while the graph grows.
func ExampleNewIncremental() {
	g := egocensus.NewGraph(false)
	for i := 0; i < 3; i++ {
		g.AddNode()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	spec := egocensus.Spec{Pattern: egocensus.CliquePattern("tri", 3, nil), K: 1}
	inc, err := egocensus.NewIncremental(g, spec, egocensus.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("before:", inc.NumMatches())
	inc.AddEdge(0, 2) // closes the triangle
	fmt.Println("after:", inc.NumMatches(), "count at node 0:", inc.Counts()[0])
	// Output:
	// before: 0
	// after: 1 count at node 0: 1
}
