// Command egoserve serves ego-centric pattern census queries over
// HTTP/JSON from a stored graph.
//
// Usage:
//
//	egoserve -graph graph.egoc [-addr :8080] [-alg PT-OPT] [-workers N]
//	egoserve -graph graph.egoc -mutlog   # serve the crash-recovered dynamic store
//
// Endpoints:
//
//	POST /v1/query  {"query": "...", "params": {"name": "value"}, "timeout_ms": 1000, "max_rows": 100}
//	GET  /v1/stats  graph version, cache counters, admission gauges
//	GET  /healthz   liveness probe
//
// Single-SELECT requests run through prepared statements cached by query
// text: repeated requests skip parsing and planning (epoch-keyed plan
// cache), and repeated requests with identical parameters against an
// unchanged graph version return straight from the result cache.
// Admission control executes at most -inflight queries concurrently,
// queues at most -queue more, and sheds the rest with HTTP 429.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight queries
// finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"egocensus/internal/core"
	"egocensus/internal/graph"
	"egocensus/internal/serve"
	"egocensus/internal/storage"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "graph file written by gengraph (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		alg         = flag.String("alg", "", "force algorithm: ND-BAS, ND-DIFF, ND-PVOT, PT-BAS, PT-RND, PT-OPT")
		workers     = flag.Int("workers", core.DefaultWorkers(), "parallel workers per query's counting phase")
		seed        = flag.Int64("seed", 1, "seed for RND() sampling")
		mutlog      = flag.Bool("mutlog", false, "open -graph as a dynamic store: replay its mutation-log sidecar(s) and serve the recovered snapshot")
		shards      = flag.Int("shards", 0, "shard-affine scheduling: partition focal work across this many shards (0 = the store's own shard count for -mutlog, no affinity otherwise)")
		inflight    = flag.Int("inflight", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "max queries waiting for a slot before 429 (0 = 4x inflight)")
		reqTimeout  = flag.Duration("timeout", 30*time.Second, "default per-request evaluation deadline")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		planEntries = flag.Int("plan-cache", core.DefaultPlanCacheEntries, "plan cache capacity in entries (<=0 disables)")
		resultMB    = flag.Int64("result-cache-mb", core.DefaultResultCacheBytes>>20, "result cache budget in MiB (<=0 disables)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight queries")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "egoserve: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	var e *core.Engine
	var writeHealth func() error
	if *mutlog {
		ds, err := storage.OpenDynamic(*graphPath)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		if *shards > 0 && *shards != ds.Shards() {
			fatal(fmt.Errorf("egoserve: store %s has %d shards, not %d", *graphPath, ds.Shards(), *shards))
		}
		records, bytes, baseEpoch := ds.LogStats()
		fmt.Fprintf(os.Stderr, "egoserve: recovered epoch %d (base image at epoch %d, %d shards, %d log records, %d bytes)\n",
			ds.Snapshot().Epoch(), baseEpoch, ds.Shards(), records, bytes)
		e = core.NewEngineLiveSharded(ds.Writer())
		// A writer that degrades on WAL failure keeps serving reads;
		// /healthz reports it so operators see the read-only (or
		// partially writable, for sharded stores) state.
		writeHealth = ds.Writer().Degraded
	} else {
		st, err := storage.Open(*graphPath, 0)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		e = core.NewEngineFromSource(st)
		if *shards > 1 {
			e.Opt.Partitioner = graph.NewPartitioner(*shards)
		}
	}
	e.Alg = core.Algorithm(*alg)
	e.Opt.Workers = core.EffectiveWorkers(*workers)
	e.Seed = *seed
	e.ConfigureCaches(*planEntries, *resultMB<<20)

	srv := serve.New(e, serve.Config{
		MaxInFlight:    *inflight,
		MaxQueue:       *queue,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		WriteHealth:    writeHealth,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "egoserve: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "egoserve: %s — draining (up to %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "egoserve: drain incomplete: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "egoserve: drained")
	}
}

func fatal(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "egoserve: ") {
		msg = "egoserve: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
