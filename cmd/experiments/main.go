// Command experiments regenerates the paper's evaluation figures
// (Fig 4(a)–(h)) as printed series.
//
// Usage:
//
//	experiments -fig 4a [-scale unit|small|paper] [-seed 1] [-ndbas] [-v]
//	experiments -fig all -scale small
//
// Scale "unit" finishes in seconds, "small" in minutes, and "paper"
// reproduces the paper's sizes (hours; the GQL square measurement alone
// took the original authors 37 hours).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"

	"egocensus/internal/exp"
)

func main() {
	var (
		figID   = flag.String("fig", "all", "figure to run: 4a..4h or all")
		scale   = flag.String("scale", "unit", "experiment scale: unit, small or paper")
		seed    = flag.Int64("seed", 1, "random seed")
		ndbas   = flag.Bool("ndbas", false, "include the ND-BAS baseline everywhere (very slow)")
		verbose = flag.Bool("v", false, "stream progress lines while running")
		csvOut  = flag.String("csv", "", "also append raw measurements to this CSV file")
	)
	flag.Parse()
	sc, err := exp.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	cfg := exp.Config{Scale: sc, Seed: *seed, IncludeNDBas: *ndbas}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	var figures []exp.Figure
	if *figID == "all" {
		figures = exp.Figures()
	} else {
		f, err := exp.FigureByID(*figID)
		if err != nil {
			fatal(err)
		}
		figures = []exp.Figure{f}
	}
	for i, f := range figures {
		if i > 0 {
			fmt.Println()
		}
		ms, err := f.Run(cfg, progress)
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", f.ID, err))
		}
		exp.Print(os.Stdout, f, ms)
		if *csvOut != "" {
			if err := appendCSV(*csvOut, f, ms); err != nil {
				fatal(err)
			}
		}
	}
}

// appendCSV appends one row per measurement in long format:
// figure,label,seconds,key,value (one extra row per named value).
func appendCSV(path string, f exp.Figure, ms []exp.Measurement) error {
	file, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer file.Close()
	w := csv.NewWriter(file)
	for _, m := range ms {
		if err := w.Write([]string{f.ID, m.Label(), fmt.Sprintf("%.6f", m.Seconds), "", ""}); err != nil {
			return err
		}
		for _, kv := range m.Values {
			if err := w.Write([]string{f.ID, m.Label(), "", kv.Key, kv.Value}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}
