// Command benchreport runs the repository's headline benchmark workloads
// and writes the results as machine-readable JSON for regression tracking
// (`make bench-report`, checked in as BENCH_<n>.json). Suite 1 covers the
// Fig 4(a) matching workload, the Fig 4(c) census workload, the raw
// MatchCN series, and a full-graph ND-BAS census at several worker
// counts. Suite 2 covers the query planner: per-query optimization
// overhead and a head-to-head of cost-based algorithm selection against
// the old boolean selectivity heuristic (labels/predicates -> PT-OPT).
//
// Suite 4 covers the dynamic MVCC core: snapshot-acquisition overhead
// against direct graph access, publish cost with and without the durable
// mutation log, and incremental census maintenance against full recompute
// over a mutation stream.
//
// Suite 6 covers worker scaling: the suite-4 census workload at 1/2/4/8
// workers, compared against the BENCH_4 baseline recorded before the
// bitset kernels and the work-stealing scheduler.
//
// Suite 7 covers the serving path: prepared-statement latency against
// one-shot Execute (the parse+plan cost a warm plan cache removes),
// result-cache hit latency (no census driver runs at all), and HTTP
// throughput through the egoserve handler at 1/4/8 concurrent clients.
//
// Suite 8 covers the sharded store: durable ingest throughput at 1/2/4/8
// shards, replay-on-open latency (parallel per-segment scans), and
// census latency on a pinned sharded snapshot against the unsharded
// baseline (shard-affine scheduling must stay within 10%).
//
// Usage:
//
//	benchreport [-o BENCH_1.json] [-ndbas-nodes 1200] [-quick]
//	benchreport -suite 2 [-o BENCH_2.json]
//	benchreport -suite 4 [-o BENCH_4.json]
//	benchreport -suite 6 [-o BENCH_6.json]
//	benchreport -suite 7 [-o BENCH_7.json]
//	benchreport -suite 8 [-o BENCH_8.json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"egocensus/internal/centers"
	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/match"
	"egocensus/internal/pattern"
	"egocensus/internal/serve"
	"egocensus/internal/storage"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name     string  `json:"name"`
	Workers  int     `json:"workers,omitempty"`
	N        int     `json:"iterations"`
	NsPerOp  int64   `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	Seconds  float64 `json:"seconds_per_op"`
}

// Report is the checked-in benchmark artifact.
type Report struct {
	Date       string  `json:"date"`
	GoOS       string  `json:"goos"`
	GoArch     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Entries    []Entry `json:"entries"`
	// NDBasSpeedup is ns/op(workers=1 reference entry) divided by
	// ns/op(workers=8): the acceptance metric of the parallel census
	// drivers. On single-CPU machines the gain comes from the CSR kernel
	// rather than concurrency.
	NDBasSpeedup float64 `json:"ndbas_speedup_8w,omitempty"`
	// Seed holds the pre-rewrite baseline (map-based adjacency, per-call
	// BFS maps, ego-subgraph extraction, sequential drivers) recorded on
	// this machine before the CSR kernel landed, and the derived ratios.
	Seed *SeedComparison `json:"seed_comparison,omitempty"`
	// Planner holds the suite-2 planner metrics.
	Planner *PlannerReport `json:"planner,omitempty"`
	// Dynamic holds the suite-4 MVCC/dynamic-graph metrics.
	Dynamic *DynamicReport `json:"dynamic,omitempty"`
	// Scaling holds the suite-6 worker-scaling metrics.
	Scaling *ScalingReport `json:"scaling,omitempty"`
	// Serving holds the suite-7 prepared-query and HTTP serving metrics.
	Serving *ServingReport `json:"serving,omitempty"`
	// Sharded holds the suite-8 sharded-store metrics.
	Sharded *ShardedReport `json:"sharded,omitempty"`
}

// ShardedPoint is one shard-count measurement in the suite-8 sweep.
type ShardedPoint struct {
	Shards  int   `json:"shards"`
	NsPerOp int64 `json:"ns_per_op"`
}

// ShardedReport is the suite-8 artifact: what partitioned ingest lanes
// buy on the durable write path, what parallel segment replay costs on
// open, and whether shard-affine census scheduling stays latency-neutral.
type ShardedReport struct {
	// Ingest is the durable 100-edge-batch publish latency per shard
	// count (create store, publish through the per-shard WAL segments).
	Ingest []ShardedPoint `json:"ingest_100edge_batch"`
	// IngestSpeedupAt4 is ns/op(1 shard) / ns/op(4 shards). The >=2x
	// acceptance criterion is conditional on a >=4-CPU machine — see
	// Note and the report's gomaxprocs field.
	IngestSpeedupAt4 float64 `json:"ingest_speedup_at_4_shards"`
	// ReplayOpen is the OpenDynamic latency per shard count over an
	// identical mutation-log payload (segments scan and replay in
	// parallel for P>1).
	ReplayOpen []ShardedPoint `json:"replay_on_open"`
	// CensusShardedNsPerOp is a pinned census over the 4-shard store's
	// snapshot with shard-affine scheduling; CensusUnshardedNsPerOp is
	// the same census over a plain clone without a partitioner.
	// CensusLatencyRatio = sharded/unsharded (acceptance: within 1.10).
	CensusShardedNsPerOp   int64   `json:"census_sharded_ns_per_op"`
	CensusUnshardedNsPerOp int64   `json:"census_unsharded_ns_per_op"`
	CensusLatencyRatio     float64 `json:"census_latency_ratio"`
	// Note records the machine conditionality of the speedup criterion.
	Note string `json:"note"`
}

// ServingReport is the suite-7 artifact: what preparing a statement saves
// over one-shot execution, what a result-cache hit costs, and the QPS the
// HTTP handler sustains at increasing client concurrency (result-cache
// hot path — the steady state of a dashboard refreshing the same query
// against an unchanged graph version).
type ServingReport struct {
	// UnpreparedNsPerOp is Engine.Execute of the query text (parse + plan
	// + census every call). PreparedNsPerOp is Prepared.ExecuteContext
	// with the result cache disabled: the plan comes from the warm
	// epoch-keyed cache, the census still runs. ResultHitNsPerOp is a
	// result-cache hit: no planning, no census driver.
	UnpreparedNsPerOp int64 `json:"unprepared_ns_per_op"`
	PreparedNsPerOp   int64 `json:"prepared_ns_per_op"`
	ResultHitNsPerOp  int64 `json:"result_cache_hit_ns_per_op"`
	// PlanCachedObserved / ResultCachedObserved are the ExecStats flags
	// from the measured executions — the acceptance evidence that the warm
	// path skipped parse+plan and that the hit path ran no census.
	PlanCachedObserved   bool `json:"plan_cached_observed"`
	ResultCachedObserved bool `json:"result_cached_observed"`
	// PreparedSpeedup = unprepared/prepared; ResultHitSpeedup =
	// unprepared/result-hit. On a census-dominated query the prepared
	// speedup approaches 1 (parse+plan is microseconds against a
	// milliseconds census); the Small pair below repeats the comparison
	// on a 100-node graph where the fixed parse+plan cost is a visible
	// fraction of the round trip — the interactive-query regime prepared
	// statements exist for.
	PreparedSpeedup        float64 `json:"prepared_speedup"`
	ResultHitSpeedup       float64 `json:"result_cache_hit_speedup"`
	UnpreparedSmallNsPerOp int64   `json:"unprepared_small_ns_per_op"`
	PreparedSmallNsPerOp   int64   `json:"prepared_small_ns_per_op"`
	PreparedSmallSpeedup   float64 `json:"prepared_small_speedup"`
	// HTTPQPS is the handler throughput sweep.
	HTTPQPS []QPSPoint `json:"http_qps"`
}

// QPSPoint is one concurrency level of the HTTP throughput sweep.
type QPSPoint struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
}

// ScalingReport is the suite-6 artifact: the BENCH_4 census workload
// (labeled BA graph, unlabeled triangle, k=1, ND-BAS) swept across worker
// counts, compared against the constants recorded in BENCH_4.json before
// the bitset kernels, work-stealing scheduler, and zero-alloc counting
// runs landed. On a single-CPU machine the worker sweep is flat (the
// scheduler only proves it costs nothing); the speedup comes from the
// kernels and the allocation work.
type ScalingReport struct {
	// BaselineNsPerOp / BaselineAllocsOp are the BENCH_4
	// pinned-census numbers on this machine (pre-kernel).
	BaselineNsPerOp  int64 `json:"baseline_census_ns_per_op"`
	BaselineAllocsOp int64 `json:"baseline_census_allocs_per_op"`
	// BestNsPerOp is the fastest measured worker point;
	// SpeedupAt4Workers and AllocReductionAt4Workers are the acceptance
	// ratios at the 4-worker point (baseline / measured).
	BestNsPerOp              int64   `json:"best_census_ns_per_op"`
	BestWorkers              int     `json:"best_workers"`
	SpeedupAt4Workers        float64 `json:"speedup_vs_baseline_4w"`
	AllocReductionAt4Workers float64 `json:"alloc_reduction_vs_baseline_4w"`
}

// DynamicReport is the suite-4 artifact: what snapshot isolation costs on
// the read path (nothing, is the acceptance bar), what a publish costs
// with and without durability, and what incremental census maintenance
// saves against recomputing after every published batch.
type DynamicReport struct {
	// SnapshotAcquireNsPerOp is one Writer.Snapshot() call (an atomic
	// pointer load).
	SnapshotAcquireNsPerOp int64 `json:"snapshot_acquire_ns_per_op"`
	// PinnedCensusNsPerOp runs a census on a pinned snapshot;
	// DirectCensusNsPerOp the same census on a plain mutable graph;
	// PinnedOverhead their relative difference (pinned/direct - 1).
	PinnedCensusNsPerOp int64   `json:"pinned_census_ns_per_op"`
	DirectCensusNsPerOp int64   `json:"direct_census_ns_per_op"`
	PinnedOverhead      float64 `json:"pinned_census_overhead"`
	// PublishNsPerOp is staging + publishing a 100-edge batch in memory;
	// DurablePublishNsPerOp the same through the fsynced mutation log.
	PublishNsPerOp        int64 `json:"publish_100edges_ns_per_op"`
	DurablePublishNsPerOp int64 `json:"durable_publish_100edges_ns_per_op"`
	// MaintainStreamNsPerOp applies the whole mutation stream to a
	// registered incremental query; RecomputeStreamNsPerOp runs a full
	// census on every published version instead; IncrementalSpeedup is
	// their ratio.
	MaintainStreamNsPerOp  int64   `json:"incremental_maintain_stream_ns_per_op"`
	RecomputeStreamNsPerOp int64   `json:"full_recompute_stream_ns_per_op"`
	IncrementalSpeedup     float64 `json:"incremental_speedup"`
	StreamBatches          int     `json:"stream_batches"`
	StreamOpsPerBatch      int     `json:"stream_ops_per_batch"`
}

// PlannerReport is the suite-2 artifact: the cost of planning itself and
// the head-to-head between cost-based selection and the old boolean
// heuristic on a workload the heuristic misjudges.
type PlannerReport struct {
	// PlanNsPerOp is one Build+Optimize pass; QueryNsPerOp the full query
	// (plan + focal select + census + render); OverheadFraction their
	// ratio. The acceptance bar is < 0.01.
	PlanNsPerOp      int64   `json:"plan_ns_per_op"`
	QueryNsPerOp     int64   `json:"query_ns_per_op"`
	OverheadFraction float64 `json:"plan_overhead_fraction"`
	// HeuristicAlgorithm is what the old labels/predicates rule picks for
	// the head-to-head query; CostBasedAlgorithm what the optimizer picks.
	HeuristicAlgorithm string `json:"heuristic_algorithm"`
	CostBasedAlgorithm string `json:"cost_based_algorithm"`
	// HeuristicNsPerOp / CostBasedNsPerOp are the measured census times
	// under each choice; Speedup is heuristic/cost-based (> 1 means the
	// cost model won).
	HeuristicNsPerOp int64   `json:"heuristic_ns_per_op"`
	CostBasedNsPerOp int64   `json:"cost_based_ns_per_op"`
	Speedup          float64 `json:"cost_based_speedup"`
}

// SeedComparison compares the current kernel against the recorded
// pre-CSR baseline on the same workloads and machine.
type SeedComparison struct {
	NDBasSeqNsPerOp    int64   `json:"ndbas_seed_seq_ns_per_op"`
	NDBasSeqAllocsOp   int64   `json:"ndbas_seed_seq_allocs_per_op"`
	MatchCNNsPerOp     int64   `json:"match_cn_seed_ns_per_op"`
	MatchCNAllocsOp    int64   `json:"match_cn_seed_allocs_per_op"`
	NDBasSpeedupVsSeed float64 `json:"ndbas_8w_speedup_vs_seed"`
	MatchCNAllocsRatio float64 `json:"match_cn_allocs_vs_seed"`
}

// Pre-rewrite numbers for the workloads below, recorded with this same
// command at the growth seed (n=1200 labeled clq3 k=2 ND-BAS census;
// MatchCN on the labeled 4000-node Fig 4(a) graph; linux/amd64, 1 CPU).
const (
	seedNDBasSeqNsPerOp  = 382091831
	seedNDBasSeqAllocsOp = 1688835
	seedMatchCNNsPerOp   = 5941920
	seedMatchCNAllocsOp  = 22968
	seedNDBasNodes       = 1200
)

func measure(name string, workers int, fn func(b *testing.B)) Entry {
	r := testing.Benchmark(fn)
	e := Entry{
		Name:     name,
		Workers:  workers,
		N:        r.N,
		NsPerOp:  r.NsPerOp(),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
		Seconds:  float64(r.NsPerOp()) / 1e9,
	}
	fmt.Fprintf(os.Stderr, "%-32s workers=%-2d %12d ns/op %12d allocs/op (%d iters)\n",
		e.Name, e.Workers, e.NsPerOp, e.AllocsOp, e.N)
	return e
}

func labeledGraph(n int) *graph.Graph {
	g := gen.PreferentialAttachment(n, 5, 1)
	gen.AssignLabels(g, 4, 2)
	g.BuildProfiles()
	return g
}

func unlabeledGraph(n int) *graph.Graph {
	g := gen.PreferentialAttachment(n, 5, 1)
	g.BuildProfiles()
	return g
}

func main() {
	var (
		out        = flag.String("o", "BENCH_1.json", "output JSON path")
		ndbasNodes = flag.Int("ndbas-nodes", 1200, "graph size for the ND-BAS census workload")
		quick      = flag.Bool("quick", false, "skip the slower Fig4c per-algorithm sweep")
		suite      = flag.Int("suite", 1, "workload suite: 1 = kernels, 2 = query planner, 4 = dynamic MVCC core, 6 = worker scaling, 7 = prepared queries & HTTP serving, 8 = sharded store")
	)
	flag.Parse()

	rep := &Report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	if *suite == 2 {
		plannerSuite(rep)
		writeReport(*out, rep)
		fmt.Fprintf(os.Stderr, "wrote %s (plan overhead %.4f%%, cost-based speedup %.2fx)\n",
			*out, rep.Planner.OverheadFraction*100, rep.Planner.Speedup)
		return
	}
	if *suite == 4 {
		dynamicSuite(rep)
		writeReport(*out, rep)
		fmt.Fprintf(os.Stderr, "wrote %s (pinned census overhead %+.2f%%, incremental speedup %.1fx)\n",
			*out, rep.Dynamic.PinnedOverhead*100, rep.Dynamic.IncrementalSpeedup)
		return
	}
	if *suite == 6 {
		scalingSuite(rep)
		writeReport(*out, rep)
		fmt.Fprintf(os.Stderr, "wrote %s (census speedup at 4 workers %.2fx, alloc reduction %.0fx)\n",
			*out, rep.Scaling.SpeedupAt4Workers, rep.Scaling.AllocReductionAt4Workers)
		return
	}
	if *suite == 7 {
		servingSuite(rep)
		writeReport(*out, rep)
		fmt.Fprintf(os.Stderr, "wrote %s (prepared speedup %.2fx, result-cache hit speedup %.1fx)\n",
			*out, rep.Serving.PreparedSpeedup, rep.Serving.ResultHitSpeedup)
		return
	}
	if *suite == 8 {
		shardedSuite(rep)
		writeReport(*out, rep)
		fmt.Fprintf(os.Stderr, "wrote %s (ingest speedup at 4 shards %.2fx on %d-way GOMAXPROCS, census latency ratio %.3f)\n",
			*out, rep.Sharded.IngestSpeedupAt4, rep.GoMaxProcs, rep.Sharded.CensusLatencyRatio)
		return
	}

	clq3 := pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"})

	// Fig 4(a): CN matching on the labeled 4000-node graph.
	g4a := labeledGraph(4000)
	rep.Entries = append(rep.Entries, measure("fig4a/clq3/CN", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.FindMatches(match.CN{}, g4a, clq3)
		}
	}))

	// MatchCN raw series point (allocations are the acceptance metric).
	mcn := measure("match-cn/n=4000", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.FindMatches(match.CN{}, g4a, clq3)
		}
	})
	rep.Entries = append(rep.Entries, mcn)

	// Full-graph ND-BAS census on the Fig 4(a) workload class (labeled
	// clq3, k=2) at 1 and 8 workers — the headline speedup metric.
	gnd := labeledGraph(*ndbasNodes)
	spec := core.Spec{Pattern: clq3, K: 2}
	var seq, par Entry
	for _, w := range []int{1, 8} {
		w := w
		e := measure(fmt.Sprintf("ndbas-census/n=%d", *ndbasNodes), w, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Count(gnd, spec, core.NDBas, core.Options{Seed: 1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Entries = append(rep.Entries, e)
		if w == 1 {
			seq = e
		} else {
			par = e
		}
	}
	if par.NsPerOp > 0 {
		rep.NDBasSpeedup = float64(seq.NsPerOp) / float64(par.NsPerOp)
	}
	if *ndbasNodes == seedNDBasNodes && par.NsPerOp > 0 {
		rep.Seed = &SeedComparison{
			NDBasSeqNsPerOp:    seedNDBasSeqNsPerOp,
			NDBasSeqAllocsOp:   seedNDBasSeqAllocsOp,
			MatchCNNsPerOp:     seedMatchCNNsPerOp,
			MatchCNAllocsOp:    seedMatchCNAllocsOp,
			NDBasSpeedupVsSeed: float64(seedNDBasSeqNsPerOp) / float64(par.NsPerOp),
			MatchCNAllocsRatio: float64(mcn.AllocsOp) / float64(seedMatchCNAllocsOp),
		}
		fmt.Fprintf(os.Stderr, "ndbas 8w vs seed sequential: %.2fx; match-cn allocs vs seed: %.3fx\n",
			rep.Seed.NDBasSpeedupVsSeed, rep.Seed.MatchCNAllocsRatio)
	}

	// Fig 4(c): unlabeled triangle census, every algorithm.
	if !*quick {
		g4c := unlabeledGraph(1000)
		cidx := centers.Build(g4c, 12, centers.ByDegree, 1)
		spec4c := core.Spec{Pattern: pattern.Clique("clq3-unlb", 3, nil), K: 2}
		for _, alg := range core.Algorithms {
			alg := alg
			rep.Entries = append(rep.Entries, measure("fig4c/"+string(alg), 0, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					opt := core.Options{Seed: 1, PMDCenters: cidx, ClusterCenters: cidx}
					if _, err := core.Count(g4c, spec4c, alg, opt); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}

	writeReport(*out, rep)
	fmt.Fprintf(os.Stderr, "wrote %s (ndbas 8-worker speedup: %.2fx)\n", *out, rep.NDBasSpeedup)
}

func writeReport(out string, rep *Report) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

// heuristicAlgorithm replicates the boolean rule the engine used before
// the cost-based optimizer: labels or predicates imply a selective
// pattern (pattern-driven PT-OPT); everything else is node-driven
// ND-PVOT. It ignores the match-set size entirely, which is exactly what
// the head-to-head workload exploits.
func heuristicAlgorithm(p *pattern.Pattern) core.Algorithm {
	selective := len(p.Predicates()) > 0
	for i := 0; i < p.NumNodes(); i++ {
		if p.Node(i).Label != "" {
			selective = true
			break
		}
	}
	if selective {
		return core.PTOpt
	}
	return core.NDPvot
}

// plannerSuite measures suite 2: planning overhead and the
// heuristic-vs-cost-based head-to-head. The workload is a fully labeled
// triangle on a graph where every node carries that label — the old rule
// reads the labels as selectivity and picks PT-OPT, but the match set is
// as large as the unlabeled case, so the cost model's node-driven choice
// is far cheaper.
func plannerSuite(rep *Report) {
	g := gen.PreferentialAttachment(1000, 5, 1)
	gen.AssignLabels(g, 1, 2) // every node labeled l0
	g.BuildProfiles()
	clq := pattern.Clique("clq3l0", 3, []string{"l0", "l0", "l0"})

	e := core.NewEngine(g)
	if err := e.DefinePattern(clq); err != nil {
		fatalErr(err)
	}
	const qsrc = `SELECT ID, COUNTP(clq3l0, SUBGRAPH(ID, 2)) FROM nodes`
	script, err := lang.ParseWith(qsrc, e.Patterns())
	if err != nil {
		fatalErr(err)
	}
	q := script.Queries()[0]
	phys, err := e.Plan(q) // warm the stats memo before timing
	if err != nil {
		fatalErr(err)
	}

	planE := measure("planner/plan-only", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Plan(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	queryE := measure("planner/full-query", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(q); err != nil {
				b.Fatal(err)
			}
		}
	})

	spec := core.Spec{Pattern: clq, K: 2}
	heuristic := heuristicAlgorithm(clq)
	costBased := core.Algorithm(phys.Algorithm(0))
	opt := core.Options{Seed: 1}
	heurE := measure("headtohead/heuristic="+string(heuristic), 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Count(g, spec, heuristic, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	costE := measure("headtohead/cost-based="+string(costBased), 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Count(g, spec, costBased, opt); err != nil {
				b.Fatal(err)
			}
		}
	})

	rep.Entries = append(rep.Entries, planE, queryE, heurE, costE)
	rep.Planner = &PlannerReport{
		PlanNsPerOp:        planE.NsPerOp,
		QueryNsPerOp:       queryE.NsPerOp,
		OverheadFraction:   float64(planE.NsPerOp) / float64(queryE.NsPerOp),
		HeuristicAlgorithm: string(heuristic),
		CostBasedAlgorithm: string(costBased),
		HeuristicNsPerOp:   heurE.NsPerOp,
		CostBasedNsPerOp:   costE.NsPerOp,
		Speedup:            float64(heurE.NsPerOp) / float64(costE.NsPerOp),
	}
}

// BENCH_4.json's dynamic/census-pinned entry, recorded on this machine
// before the bitset kernels / work-stealing / zero-alloc counting runs:
// the baseline the suite-6 scaling table is judged against.
const (
	baselineCensusNsPerOp  = 20958609
	baselineCensusAllocsOp = 70677
)

// scalingSuite measures suite 6: the BENCH_4 census workload across
// worker counts 1/2/4/8, on the skewed preferential-attachment degree
// distribution that exercises the cost-seeded work-stealing schedule.
func scalingSuite(rep *Report) {
	g := labeledGraph(1000)
	spec := core.Spec{Pattern: pattern.Clique("clq3-unlb", 3, nil), K: 1}
	var at4 Entry
	best := Entry{NsPerOp: int64(^uint64(0) >> 1)}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		e := measure("census-scaling/ndbas", w, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Count(g, spec, core.NDBas, core.Options{Seed: 1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Entries = append(rep.Entries, e)
		if w == 4 {
			at4 = e
		}
		if e.NsPerOp < best.NsPerOp {
			best = e
		}
	}
	sc := &ScalingReport{
		BaselineNsPerOp:  baselineCensusNsPerOp,
		BaselineAllocsOp: baselineCensusAllocsOp,
		BestNsPerOp:      best.NsPerOp,
		BestWorkers:      best.Workers,
	}
	if at4.NsPerOp > 0 {
		sc.SpeedupAt4Workers = float64(baselineCensusNsPerOp) / float64(at4.NsPerOp)
	}
	if at4.AllocsOp > 0 {
		sc.AllocReductionAt4Workers = float64(baselineCensusAllocsOp) / float64(at4.AllocsOp)
	}
	rep.Scaling = sc
}

// dynamicSuite measures suite 4. Read path: acquiring a snapshot is an
// atomic load, and a census over the pinned frozen view must cost the same
// as over a plain graph. Write path: publish cost for a 100-edge batch,
// in memory and through the fsynced mutation log. Maintenance: a stream
// of published batches folded into a registered incremental query versus
// a full census per published version.
func dynamicSuite(rep *Report) {
	const (
		n        = 1000
		batches  = 30
		batchOps = 5
	)
	base := labeledGraph(n)
	spec := core.Spec{Pattern: pattern.Clique("clq3-unlb", 3, nil), K: 1}
	opt := core.Options{Seed: 1}

	w := graph.NewWriter(base.Clone())
	acqE := measure("dynamic/snapshot-acquire", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if w.Snapshot() == nil {
				b.Fatal("nil snapshot")
			}
		}
	})
	snap := w.Snapshot()
	pinnedE := measure("dynamic/census-pinned", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.CountSnapshot(snap, spec, core.NDBas, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	direct := base.Clone()
	directE := measure("dynamic/census-direct", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Count(direct, spec, core.NDBas, opt); err != nil {
				b.Fatal(err)
			}
		}
	})

	rng := rand.New(rand.NewSource(9))
	randomEdge := func() (graph.NodeID, graph.NodeID) {
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n))
		if a == b {
			b = (b + 1) % n
		}
		return a, b
	}
	pw := graph.NewWriter(base.Clone())
	pubE := measure("dynamic/publish-100edges", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 100; j++ {
				from, to := randomEdge()
				pw.AddEdge(from, to)
			}
			if _, err := pw.Publish(); err != nil {
				b.Fatal(err)
			}
		}
	})
	tmp, err := os.MkdirTemp("", "egocensus-bench")
	if err != nil {
		fatalErr(err)
	}
	defer os.RemoveAll(tmp)
	ds, err := storage.CreateDynamic(filepath.Join(tmp, "g.egoc"), base.Clone())
	if err != nil {
		fatalErr(err)
	}
	defer ds.Close()
	dw := ds.Writer()
	durE := measure("dynamic/publish-durable", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 100; j++ {
				from, to := randomEdge()
				dw.AddEdge(from, to)
			}
			if _, err := dw.Publish(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Mutation stream, recorded once: the published snapshots share
	// storage copy-on-write, so holding all of them is cheap.
	sw := graph.NewWriter(base.Clone())
	snap0 := sw.Snapshot()
	var deltas []graph.Delta
	var versions []*graph.Snapshot
	sw.Subscribe(func(s *graph.Snapshot, d graph.Delta) {
		versions = append(versions, s)
		deltas = append(deltas, d)
	})
	for i := 0; i < batches; i++ {
		for j := 0; j < batchOps; j++ {
			from, to := randomEdge()
			sw.AddEdge(from, to)
		}
		if _, err := sw.Publish(); err != nil {
			fatalErr(err)
		}
	}
	maintE := measure("dynamic/incremental-maintain", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mt := core.NewMaintainer(snap0)
			if err := mt.Register("clq3", spec, opt); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, d := range deltas {
				if err := mt.Apply(d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	recompE := measure("dynamic/full-recompute", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range versions {
				if _, err := core.CountSnapshot(s, spec, core.PTOpt, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	rep.Entries = append(rep.Entries, acqE, pinnedE, directE, pubE, durE, maintE, recompE)
	rep.Dynamic = &DynamicReport{
		SnapshotAcquireNsPerOp: acqE.NsPerOp,
		PinnedCensusNsPerOp:    pinnedE.NsPerOp,
		DirectCensusNsPerOp:    directE.NsPerOp,
		PinnedOverhead:         float64(pinnedE.NsPerOp)/float64(directE.NsPerOp) - 1,
		PublishNsPerOp:         pubE.NsPerOp,
		DurablePublishNsPerOp:  durE.NsPerOp,
		MaintainStreamNsPerOp:  maintE.NsPerOp,
		RecomputeStreamNsPerOp: recompE.NsPerOp,
		IncrementalSpeedup:     float64(recompE.NsPerOp) / float64(maintE.NsPerOp),
		StreamBatches:          batches,
		StreamOpsPerBatch:      batchOps,
	}
}

// shardedSuite measures suite 8. Ingest: the suite-4 durable-publish
// workload (100-edge batches through the fsynced mutation log) against
// stores created with 1, 2, 4, and 8 shards — staging, WAL append, and
// fsync run as per-shard lanes, so the sweep measures what lane
// parallelism buys on this machine. Replay: OpenDynamic over an
// identical ~logged payload per shard count (segments scan and replay
// concurrently for P>1). Parity: a pinned census over the 4-shard
// store's snapshot, scheduled shard-affinely through the store's
// partitioner, against the same census on an unsharded clone.
func shardedSuite(rep *Report) {
	const (
		n           = 1000
		replayEdges = 3000 // logged payload for the replay-on-open point
		batchEdges  = 100
		shardedP    = 4
	)
	base := labeledGraph(n)
	spec := core.Spec{Pattern: pattern.Clique("clq3-unlb", 3, nil), K: 1}

	tmp, err := os.MkdirTemp("", "egocensus-bench")
	if err != nil {
		fatalErr(err)
	}
	defer os.RemoveAll(tmp)

	randomEdge := func(rng *rand.Rand) (graph.NodeID, graph.NodeID) {
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n))
		if a == b {
			b = (b + 1) % n
		}
		return a, b
	}

	sh := &ShardedReport{
		Note: "the >=2x ingest-speedup-at-4-shards acceptance criterion is conditional on a >=4-CPU run (see gomaxprocs); on fewer cores the lanes still overlap segment fsyncs but serialize staging and apply",
	}
	var nsAt1, nsAt4 int64
	for _, shards := range []int{1, 2, 4, 8} {
		ds, err := storage.CreateDynamicSharded(filepath.Join(tmp, fmt.Sprintf("ingest%d.egoc", shards)), base.Clone(), shards)
		if err != nil {
			fatalErr(err)
		}
		dw := ds.Writer()
		rng := rand.New(rand.NewSource(9))
		e := measure(fmt.Sprintf("sharded/ingest-100edges/p=%d", shards), 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batchEdges; j++ {
					from, to := randomEdge(rng)
					dw.AddEdge(from, to)
				}
				if _, err := dw.Publish(); err != nil {
					b.Fatal(err)
				}
			}
		})
		ds.Close()
		rep.Entries = append(rep.Entries, e)
		sh.Ingest = append(sh.Ingest, ShardedPoint{Shards: shards, NsPerOp: e.NsPerOp})
		switch shards {
		case 1:
			nsAt1 = e.NsPerOp
		case shardedP:
			nsAt4 = e.NsPerOp
		}
	}
	if nsAt4 > 0 {
		sh.IngestSpeedupAt4 = float64(nsAt1) / float64(nsAt4)
	}

	// Replay-on-open: the same logged payload, reopened repeatedly.
	for _, shards := range []int{1, shardedP} {
		path := filepath.Join(tmp, fmt.Sprintf("replay%d.egoc", shards))
		ds, err := storage.CreateDynamicSharded(path, base.Clone(), shards)
		if err != nil {
			fatalErr(err)
		}
		ds.SetCompactAtBytes(0) // keep every batch in the log
		dw := ds.Writer()
		rng := rand.New(rand.NewSource(11))
		for done := 0; done < replayEdges; done += batchEdges {
			for j := 0; j < batchEdges; j++ {
				from, to := randomEdge(rng)
				dw.AddEdge(from, to)
			}
			if _, err := dw.Publish(); err != nil {
				fatalErr(err)
			}
		}
		ds.Close()
		e := measure(fmt.Sprintf("sharded/replay-open/p=%d", shards), 0, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ds, err := storage.OpenDynamic(path)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				ds.Close()
				b.StartTimer()
			}
		})
		rep.Entries = append(rep.Entries, e)
		sh.ReplayOpen = append(sh.ReplayOpen, ShardedPoint{Shards: shards, NsPerOp: e.NsPerOp})
	}

	// Census latency parity on a pinned sharded snapshot.
	ds, err := storage.CreateDynamicSharded(filepath.Join(tmp, "census.egoc"), base.Clone(), shardedP)
	if err != nil {
		fatalErr(err)
	}
	defer ds.Close()
	dw := ds.Writer()
	rng := rand.New(rand.NewSource(13))
	for j := 0; j < 200; j++ {
		from, to := randomEdge(rng)
		dw.AddEdge(from, to)
	}
	if _, err := dw.Publish(); err != nil {
		fatalErr(err)
	}
	snap := dw.Snapshot()
	affOpt := core.Options{Seed: 1, Partitioner: dw.Partitioner()}
	shardedE := measure("sharded/census-affine/p=4", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.CountSnapshot(snap, spec, core.NDBas, affOpt); err != nil {
				b.Fatal(err)
			}
		}
	})
	plain := snap.Graph().Clone()
	plainE := measure("sharded/census-plain", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Count(plain, spec, core.NDBas, core.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Entries = append(rep.Entries, shardedE, plainE)
	sh.CensusShardedNsPerOp = shardedE.NsPerOp
	sh.CensusUnshardedNsPerOp = plainE.NsPerOp
	if plainE.NsPerOp > 0 {
		sh.CensusLatencyRatio = float64(shardedE.NsPerOp) / float64(plainE.NsPerOp)
	}
	rep.Sharded = sh
}

// servingSuite measures suite 7. Latency: the same parameterized census
// query as a one-shot Engine.Execute (parse + plan + census every call),
// as a prepared execution with the result cache off (plan from the warm
// epoch-keyed cache, census still runs), and as a result-cache hit
// (nothing runs). Throughput: the egoserve HTTP handler on the hit path
// at 1, 4, and 8 concurrent clients over an in-process listener.
func servingSuite(rep *Report) {
	// The predicate compares a node attribute, not a label: label-const
	// predicates are pushed into focal selection at plan time, which a
	// parameterized query cannot do (the value is unknown when the plan is
	// compiled), and that would skew the prepared-vs-unprepared numbers.
	// Attribute predicates evaluate identically on both paths.
	g := labeledGraph(1000)
	for i := 0; i < g.NumNodes(); i++ {
		kind := "even"
		if i%2 == 1 {
			kind = "odd"
		}
		g.SetNodeAttr(graph.NodeID(i), "kind", kind)
	}
	e := core.NewEngine(g)
	e.Seed = 1

	p, err := e.Prepare(`
PATTERN tri { ?A-?B; ?B-?C; ?C-?A; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = $k
`)
	if err != nil {
		fatalErr(err)
	}
	params := map[string]string{"k": "even"}
	const unpSrc = `SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = 'even'`

	unpE := measure("serve/unprepared", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Execute(unpSrc); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Warm the plan cache, then verify the measured paths carry the
	// acceptance evidence: PlanCached on the census path, ResultCached on
	// the hit path.
	noCache := core.ExecOptions{NoResultCache: true}
	warm, err := p.ExecuteContext(context.Background(), params, noCache)
	if err != nil {
		fatalErr(err)
	}
	_ = warm
	probe, err := p.ExecuteContext(context.Background(), params, noCache)
	if err != nil {
		fatalErr(err)
	}
	planCached := probe.Stats.PlanCached && !probe.Stats.ResultCached
	prepE := measure("serve/prepared-nocache", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.ExecuteContext(context.Background(), params, noCache); err != nil {
				b.Fatal(err)
			}
		}
	})

	if _, err := p.Execute(params); err != nil { // populate the result cache
		fatalErr(err)
	}
	hit, err := p.Execute(params)
	if err != nil {
		fatalErr(err)
	}
	resultCached := hit.Stats.ResultCached
	hitE := measure("serve/result-cache-hit", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.Execute(params); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Small-graph pair: same query shape on 100 nodes, where the census is
	// tens of microseconds and the fixed parse+plan cost shows up.
	gs := labeledGraph(100)
	for i := 0; i < gs.NumNodes(); i++ {
		kind := "even"
		if i%2 == 1 {
			kind = "odd"
		}
		gs.SetNodeAttr(graph.NodeID(i), "kind", kind)
	}
	es := core.NewEngine(gs)
	es.Seed = 1
	ps, err := es.Prepare(`
PATTERN tri { ?A-?B; ?B-?C; ?C-?A; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = $k
`)
	if err != nil {
		fatalErr(err)
	}
	unpSmallE := measure("serve/unprepared-small", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := es.Execute(unpSrc); err != nil {
				b.Fatal(err)
			}
		}
	})
	prepSmallE := measure("serve/prepared-small", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ps.ExecuteContext(context.Background(), params, noCache); err != nil {
				b.Fatal(err)
			}
		}
	})

	rep.Entries = append(rep.Entries, unpE, prepE, hitE, unpSmallE, prepSmallE)
	sv := &ServingReport{
		UnpreparedNsPerOp:    unpE.NsPerOp,
		PreparedNsPerOp:      prepE.NsPerOp,
		ResultHitNsPerOp:     hitE.NsPerOp,
		PlanCachedObserved:   planCached,
		ResultCachedObserved: resultCached,
		PreparedSpeedup:      float64(unpE.NsPerOp) / float64(prepE.NsPerOp),
		ResultHitSpeedup:     float64(unpE.NsPerOp) / float64(hitE.NsPerOp),

		UnpreparedSmallNsPerOp: unpSmallE.NsPerOp,
		PreparedSmallNsPerOp:   prepSmallE.NsPerOp,
		PreparedSmallSpeedup:   float64(unpSmallE.NsPerOp) / float64(prepSmallE.NsPerOp),
	}

	// HTTP sweep: POST the prepared single-SELECT (tri is already in the
	// engine catalog) through the real handler stack and count round trips.
	srv := serve.New(e, serve.Config{MaxInFlight: 8, MaxQueue: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body, err := json.Marshal(map[string]any{
		"query":  `SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE kind = $k`,
		"params": params,
	})
	if err != nil {
		fatalErr(err)
	}
	const perClient = 250
	for _, clients := range []int{1, 4, 8} {
		var wg sync.WaitGroup
		var failed atomic.Int64
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
					if err != nil {
						failed.Add(1)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						failed.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if n := failed.Load(); n > 0 {
			fatalErr(fmt.Errorf("http sweep at %d clients: %d failed requests", clients, n))
		}
		total := clients * perClient
		pt := QPSPoint{
			Clients:  clients,
			Requests: total,
			Seconds:  elapsed.Seconds(),
			QPS:      float64(total) / elapsed.Seconds(),
		}
		sv.HTTPQPS = append(sv.HTTPQPS, pt)
		fmt.Fprintf(os.Stderr, "%-32s clients=%-2d %12.0f qps (%d requests in %.2fs)\n",
			"serve/http-qps", clients, pt.QPS, total, pt.Seconds)
	}
	rep.Serving = sv
}

func fatalErr(err error) {
	fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
	os.Exit(1)
}
