// Command benchreport runs the repository's headline benchmark workloads
// (the Fig 4(a) matching workload, the Fig 4(c) census workload, the raw
// MatchCN series, and a full-graph ND-BAS census at several worker
// counts) and writes the results as machine-readable JSON for regression
// tracking (`make bench-report`, checked in as BENCH_<n>.json).
//
// Usage:
//
//	benchreport [-o BENCH_1.json] [-ndbas-nodes 1200] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"egocensus/internal/centers"
	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/match"
	"egocensus/internal/pattern"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name     string  `json:"name"`
	Workers  int     `json:"workers,omitempty"`
	N        int     `json:"iterations"`
	NsPerOp  int64   `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	Seconds  float64 `json:"seconds_per_op"`
}

// Report is the checked-in benchmark artifact.
type Report struct {
	Date    string  `json:"date"`
	GoOS    string  `json:"goos"`
	GoArch  string  `json:"goarch"`
	NumCPU  int     `json:"num_cpu"`
	Entries []Entry `json:"entries"`
	// NDBasSpeedup is ns/op(workers=1 reference entry) divided by
	// ns/op(workers=8): the acceptance metric of the parallel census
	// drivers. On single-CPU machines the gain comes from the CSR kernel
	// rather than concurrency.
	NDBasSpeedup float64 `json:"ndbas_speedup_8w,omitempty"`
	// Seed holds the pre-rewrite baseline (map-based adjacency, per-call
	// BFS maps, ego-subgraph extraction, sequential drivers) recorded on
	// this machine before the CSR kernel landed, and the derived ratios.
	Seed *SeedComparison `json:"seed_comparison,omitempty"`
}

// SeedComparison compares the current kernel against the recorded
// pre-CSR baseline on the same workloads and machine.
type SeedComparison struct {
	NDBasSeqNsPerOp    int64   `json:"ndbas_seed_seq_ns_per_op"`
	NDBasSeqAllocsOp   int64   `json:"ndbas_seed_seq_allocs_per_op"`
	MatchCNNsPerOp     int64   `json:"match_cn_seed_ns_per_op"`
	MatchCNAllocsOp    int64   `json:"match_cn_seed_allocs_per_op"`
	NDBasSpeedupVsSeed float64 `json:"ndbas_8w_speedup_vs_seed"`
	MatchCNAllocsRatio float64 `json:"match_cn_allocs_vs_seed"`
}

// Pre-rewrite numbers for the workloads below, recorded with this same
// command at the growth seed (n=1200 labeled clq3 k=2 ND-BAS census;
// MatchCN on the labeled 4000-node Fig 4(a) graph; linux/amd64, 1 CPU).
const (
	seedNDBasSeqNsPerOp  = 382091831
	seedNDBasSeqAllocsOp = 1688835
	seedMatchCNNsPerOp   = 5941920
	seedMatchCNAllocsOp  = 22968
	seedNDBasNodes       = 1200
)

func measure(name string, workers int, fn func(b *testing.B)) Entry {
	r := testing.Benchmark(fn)
	e := Entry{
		Name:     name,
		Workers:  workers,
		N:        r.N,
		NsPerOp:  r.NsPerOp(),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
		Seconds:  float64(r.NsPerOp()) / 1e9,
	}
	fmt.Fprintf(os.Stderr, "%-32s workers=%-2d %12d ns/op %12d allocs/op (%d iters)\n",
		e.Name, e.Workers, e.NsPerOp, e.AllocsOp, e.N)
	return e
}

func labeledGraph(n int) *graph.Graph {
	g := gen.PreferentialAttachment(n, 5, 1)
	gen.AssignLabels(g, 4, 2)
	g.BuildProfiles()
	return g
}

func unlabeledGraph(n int) *graph.Graph {
	g := gen.PreferentialAttachment(n, 5, 1)
	g.BuildProfiles()
	return g
}

func main() {
	var (
		out        = flag.String("o", "BENCH_1.json", "output JSON path")
		ndbasNodes = flag.Int("ndbas-nodes", 1200, "graph size for the ND-BAS census workload")
		quick      = flag.Bool("quick", false, "skip the slower Fig4c per-algorithm sweep")
	)
	flag.Parse()

	rep := &Report{
		Date:   time.Now().UTC().Format(time.RFC3339),
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}

	clq3 := pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"})

	// Fig 4(a): CN matching on the labeled 4000-node graph.
	g4a := labeledGraph(4000)
	rep.Entries = append(rep.Entries, measure("fig4a/clq3/CN", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.FindMatches(match.CN{}, g4a, clq3)
		}
	}))

	// MatchCN raw series point (allocations are the acceptance metric).
	mcn := measure("match-cn/n=4000", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.FindMatches(match.CN{}, g4a, clq3)
		}
	})
	rep.Entries = append(rep.Entries, mcn)

	// Full-graph ND-BAS census on the Fig 4(a) workload class (labeled
	// clq3, k=2) at 1 and 8 workers — the headline speedup metric.
	gnd := labeledGraph(*ndbasNodes)
	spec := core.Spec{Pattern: clq3, K: 2}
	var seq, par Entry
	for _, w := range []int{1, 8} {
		w := w
		e := measure(fmt.Sprintf("ndbas-census/n=%d", *ndbasNodes), w, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Count(gnd, spec, core.NDBas, core.Options{Seed: 1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Entries = append(rep.Entries, e)
		if w == 1 {
			seq = e
		} else {
			par = e
		}
	}
	if par.NsPerOp > 0 {
		rep.NDBasSpeedup = float64(seq.NsPerOp) / float64(par.NsPerOp)
	}
	if *ndbasNodes == seedNDBasNodes && par.NsPerOp > 0 {
		rep.Seed = &SeedComparison{
			NDBasSeqNsPerOp:    seedNDBasSeqNsPerOp,
			NDBasSeqAllocsOp:   seedNDBasSeqAllocsOp,
			MatchCNNsPerOp:     seedMatchCNNsPerOp,
			MatchCNAllocsOp:    seedMatchCNAllocsOp,
			NDBasSpeedupVsSeed: float64(seedNDBasSeqNsPerOp) / float64(par.NsPerOp),
			MatchCNAllocsRatio: float64(mcn.AllocsOp) / float64(seedMatchCNAllocsOp),
		}
		fmt.Fprintf(os.Stderr, "ndbas 8w vs seed sequential: %.2fx; match-cn allocs vs seed: %.3fx\n",
			rep.Seed.NDBasSpeedupVsSeed, rep.Seed.MatchCNAllocsRatio)
	}

	// Fig 4(c): unlabeled triangle census, every algorithm.
	if !*quick {
		g4c := unlabeledGraph(1000)
		cidx := centers.Build(g4c, 12, centers.ByDegree, 1)
		spec4c := core.Spec{Pattern: pattern.Clique("clq3-unlb", 3, nil), K: 2}
		for _, alg := range core.Algorithms {
			alg := alg
			rep.Entries = append(rep.Entries, measure("fig4c/"+string(alg), 0, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					opt := core.Options{Seed: 1, PMDCenters: cidx, ClusterCenters: cidx}
					if _, err := core.Count(g4c, spec4c, alg, opt); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (ndbas 8-worker speedup: %.2fx)\n", *out, rep.NDBasSpeedup)
}
