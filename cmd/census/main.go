// Command census executes an ego-centric pattern census script (PATTERN
// definitions and SELECT queries, Section II of the paper) against a
// stored graph and prints the result tables.
//
// Usage:
//
//	census -graph graph.egoc -query script.pcq [-alg PT-OPT] [-seed 1]
//	census -graph graph.egoc -e 'PATTERN t {...} SELECT ...'
//
// Without -alg the cost-based optimizer picks the cheapest of the six
// census algorithms from the graph's statistics snapshot; prefix a query
// with EXPLAIN to see the plan. Binary graphs (.egoc) open as a lazy
// source, so EXPLAIN-only scripts never materialize the graph.
//
// With -mutlog the graph opens as a dynamic store: the append-only
// mutation-log sidecar (<graph>.log) is replayed onto the base image —
// recovering from a torn tail left by a crash — and queries run against
// the recovered snapshot.
package main

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"egocensus/internal/core"
	"egocensus/internal/graph"
	"egocensus/internal/storage"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph file written by gengraph (required)")
		queryPath  = flag.String("query", "", "script file with PATTERN/SELECT statements")
		inline     = flag.String("e", "", "inline script text (alternative to -query)")
		alg        = flag.String("alg", "", "force algorithm: ND-BAS, ND-DIFF, ND-PVOT, PT-BAS, PT-RND, PT-OPT")
		workers    = flag.Int("workers", core.DefaultWorkers(), "parallel workers for the counting phase (1 = sequential, <0 = auto; absurd values are clamped)")
		seed       = flag.Int64("seed", 1, "seed for RND() sampling")
		limit      = flag.Int("limit", 0, "print at most this many rows per table (0 = all)")
		format     = flag.String("format", "table", "output format: table, csv, or json (the same table encoding egoserve returns)")
		timeout    = flag.Duration("timeout", 0, "per-query evaluation deadline (0 = none); on expiry partial results are printed and the exit status is nonzero")
		maxMatches = flag.Int("max-matches", 0, "cap on the global match-set size (0 = unlimited); exceeding it prints partial results and exits nonzero")
		mutlog     = flag.Bool("mutlog", false, "open -graph as a dynamic store: replay its mutation-log sidecar(s) (crash-recovering torn tails) and query the recovered snapshot")
		shards     = flag.Int("shards", 0, "shard-affine scheduling: partition focal work across this many shards (0 = the store's own shard count for -mutlog, no affinity otherwise)")
	)
	flag.Parse()
	if *graphPath == "" || (*queryPath == "" && *inline == "") {
		fmt.Fprintln(os.Stderr, "census: -graph and one of -query/-e are required")
		flag.Usage()
		os.Exit(2)
	}
	src := *inline
	if *queryPath != "" {
		data, err := os.ReadFile(*queryPath)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	var e *core.Engine
	if *mutlog {
		ds, err := storage.OpenDynamic(*graphPath)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		if *shards > 0 && *shards != ds.Shards() {
			fatal(fmt.Errorf("census: store %s has %d shards, not %d", *graphPath, ds.Shards(), *shards))
		}
		records, bytes, baseEpoch := ds.LogStats()
		fmt.Fprintf(os.Stderr, "census: recovered epoch %d (base image at epoch %d, %d shards, %d log records, %d bytes)\n",
			ds.Snapshot().Epoch(), baseEpoch, ds.Shards(), records, bytes)
		e = core.NewEngineLiveSharded(ds.Writer())
	} else {
		st, err := storage.Open(*graphPath, 0)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		e = core.NewEngineFromSource(st)
		if *shards > 1 {
			e.Opt.Partitioner = graph.NewPartitioner(*shards)
		}
	}
	e.Alg = core.Algorithm(*alg)
	effective := core.EffectiveWorkers(*workers)
	if effective != *workers {
		fmt.Fprintf(os.Stderr, "census: using %d workers (requested %d)\n", effective, *workers)
	}
	e.Opt.Workers = effective
	e.Opt.Limits = core.Limits{Deadline: *timeout, MaxMatches: *maxMatches}
	e.Seed = *seed
	tables, err := e.Execute(src)
	if err != nil {
		failWith(err, *format, *limit)
	}
	if *format == "json" {
		if err := writeJSON(os.Stdout, tables, *limit); err != nil {
			fatal(err)
		}
		return
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *format == "csv" {
			if err := writeCSV(os.Stdout, t, *limit); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("-- query %d (%s, %d matches, %d rows, %v)\n", i+1, t.Algorithm, t.NumMatches, len(t.Rows), t.Elapsed.Round(time.Millisecond))
		if *limit > 0 && len(t.Rows) > *limit {
			trimmed := *t
			trimmed.Rows = t.Rows[:*limit]
			fmt.Print(core.FormatTable(&trimmed))
			fmt.Printf("... (%d more rows)\n", len(t.Rows)-*limit)
			continue
		}
		fmt.Print(core.FormatTable(t))
	}
}

// writeJSON emits every table as a JSON array using the same per-table
// encoding egoserve's /v1/query responses use, so downstream tooling can
// consume batch and served results identically.
func writeJSON(w io.Writer, tables []*core.Table, limit int) error {
	out := make([]core.TableJSON, 0, len(tables))
	for _, t := range tables {
		if limit > 0 && len(t.Rows) > limit {
			trimmed := *t
			trimmed.Rows = t.Rows[:limit]
			t = &trimmed
		}
		out = append(out, core.NewTableJSON(t))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeCSV emits one table in RFC-4180 CSV for downstream analysis.
func writeCSV(w io.Writer, t *core.Table, limit int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	rows := t.Rows
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fatal(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "census: ") {
		msg = "census: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}

// failWith reports a query failure and exits nonzero. Deadline and limit
// failures first print the rows the query produced before it stopped
// (marked as partial), then the diagnostic; internal errors include the
// plan that was executing.
func failWith(err error, format string, limit int) {
	var ce *core.CanceledError
	var le *core.LimitError
	var ie *core.InternalError
	switch {
	case errors.As(err, &ce):
		printPartial(ce.PartialTable, format, limit)
	case errors.As(err, &le):
		printPartial(le.PartialTable, format, limit)
	case errors.As(err, &ie):
		if ie.Plan != "" {
			fmt.Fprintf(os.Stderr, "census: plan was:\n%s", ie.Plan)
		}
	}
	fatal(err)
}

func printPartial(t *core.Table, format string, limit int) {
	if t == nil || len(t.Rows) == 0 {
		return
	}
	if format == "json" {
		writeJSON(os.Stdout, []*core.Table{t}, limit)
		return
	}
	fmt.Printf("-- partial results (%d rows before the query stopped)\n", len(t.Rows))
	if format == "csv" {
		writeCSV(os.Stdout, t, limit)
		return
	}
	if limit > 0 && len(t.Rows) > limit {
		trimmed := *t
		trimmed.Rows = t.Rows[:limit]
		fmt.Print(core.FormatTable(&trimmed))
		fmt.Printf("... (%d more rows)\n", len(t.Rows)-limit)
		return
	}
	fmt.Print(core.FormatTable(t))
}
