// Command gengraph generates the synthetic graphs of the paper's
// evaluation and writes them to the binary graph store.
//
// Usage:
//
//	gengraph -out graph.egoc -nodes 100000 [-model ba|er|ws|geo|planted|dba]
//	         [-m 5] [-labels 4] [-signed 0.0] [-seed 1]
//	         [-beta 0.1] [-radius 0.05] [-communities 8] [-text] [-shards 4]
//
// The defaults reproduce the paper's setup: a preferential-attachment
// graph with |E| = 5 |V| and labels drawn uniformly from 4 labels
// (use -labels 0 for unlabeled graphs).
package main

import (
	"flag"
	"fmt"
	"os"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/storage"
)

func main() {
	var (
		out    = flag.String("out", "", "output file (required)")
		nodes  = flag.Int("nodes", 100000, "number of nodes")
		model  = flag.String("model", "ba", "graph model: ba, er, ws (small world), geo (geometric), planted (communities), dba (directed ba)")
		m      = flag.Int("m", 5, "edges per node (ba) / edge factor (er)")
		labels = flag.Int("labels", 4, "number of node labels (0 = unlabeled)")
		signed = flag.Float64("signed", 0, "probability of a negative edge sign (0 = unsigned)")
		seed   = flag.Int64("seed", 1, "random seed")
		beta   = flag.Float64("beta", 0.1, "rewiring probability (ws model)")
		radius = flag.Float64("radius", 0.05, "connection radius (geo model)")
		comms  = flag.Int("communities", 8, "community count (planted model)")
		text   = flag.Bool("text", false, "write the text exchange format instead of binary")
		shards = flag.Int("shards", 1, "shard count recorded in the image header: opening the image as a dynamic store (-mutlog) runs this many independent ingest lanes (1 = historical unsharded layout)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	var g *graph.Graph
	switch *model {
	case "ba":
		g = gen.PreferentialAttachment(*nodes, *m, *seed)
	case "er":
		g = gen.ErdosRenyi(*nodes, *nodes**m, *seed)
	case "ws":
		g = gen.WattsStrogatz(*nodes, *m, *beta, *seed)
	case "geo":
		g = gen.RandomGeometric(*nodes, *radius, *seed)
	case "planted":
		g = gen.PlantedPartition(*nodes, *comms, *m, 1, *seed)
	case "dba":
		g = gen.DirectedPreferentialAttachment(*nodes, *m, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown model %q\n", *model)
		os.Exit(2)
	}
	if *labels > 0 {
		gen.AssignLabels(g, *labels, *seed+1)
	}
	if *signed > 0 {
		gen.AssignSigns(g, *signed, *seed+2)
	}
	save := func(path string, g *graph.Graph) error { return storage.SaveSharded(path, g, *shards) }
	if *text {
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "gengraph: -shards applies to the binary store format only")
			os.Exit(2)
		}
		save = storage.SaveText
	}
	if err := save(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges, %d labels\n",
		*out, g.NumNodes(), g.NumEdges(), g.Labels().Size()-1)
}
