package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/storage"
)

func runSession(t *testing.T, setup func(sh *shell), input string) string {
	t.Helper()
	var out strings.Builder
	sh := newShell(&out, 1)
	if setup != nil {
		setup(sh)
	}
	sh.run(strings.NewReader(input))
	return out.String()
}

func TestShellGenAndQuery(t *testing.T) {
	out := runSession(t, nil, `\gen 200 2
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes ORDER BY COUNT DESC LIMIT 3;
\quit
`)
	for _, frag := range []string{"generated 200 nodes", "3 rows", "COUNTP(tri)"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellMultilineStatement(t *testing.T) {
	out := runSession(t, nil, `\gen 50
PATTERN sq {
  ?A-?B; ?B-?C;
  ?C-?D; ?D-?A;
}
SELECT ID, COUNTP(sq, SUBGRAPH(ID, 2)) FROM nodes LIMIT 2;
\quit
`)
	if !strings.Contains(out, "2 rows") {
		t.Fatalf("multiline statement failed:\n%s", out)
	}
}

func TestShellOpenGraph(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 5)
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.egoc")
	txt := filepath.Join(dir, "g.txt")
	if err := storage.Save(bin, g); err != nil {
		t.Fatal(err)
	}
	if err := storage.SaveText(txt, g); err != nil {
		t.Fatal(err)
	}
	out := runSession(t, nil, "\\open "+bin+"\n\\open "+txt+"\n\\quit\n")
	// Binary stores open lazily (planning against resident statistics);
	// text files load eagerly.
	if !strings.Contains(out, "opened "+bin) || !strings.Contains(out, "deferred load") {
		t.Fatalf("expected deferred binary open:\n%s", out)
	}
	if !strings.Contains(out, "loaded "+txt) {
		t.Fatalf("expected eager text load:\n%s", out)
	}
}

func TestShellOpenBinaryQueriesLazily(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 5)
	bin := filepath.Join(t.TempDir(), "g.egoc")
	if err := storage.Save(bin, g); err != nil {
		t.Fatal(err)
	}
	out := runSession(t, nil, "\\open "+bin+`
PATTERN e1 { ?A-?B; }
\explain SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes LIMIT 3;
\quit
`)
	for _, frag := range []string{"deferred load", "Plan [cost-based", "<- chosen", "3 rows"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellTimingToggle(t *testing.T) {
	out := runSession(t, nil, `\gen 50
\timing
PATTERN e1 { ?A-?B; }
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes LIMIT 2;
\timing
\quit
`)
	for _, frag := range []string{"timing: on", "plan ", "focal-select ", "census ", "render ", "timing: off"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellAlgAndStats(t *testing.T) {
	out := runSession(t, nil, `\gen 100
\alg pt-opt
\alg bogus
\alg auto
\stats
\quit
`)
	for _, frag := range []string{"algorithm: PT-OPT", "unknown algorithm", "algorithm: auto", "degree min/mean"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellPatternsPersistAcrossGraphs(t *testing.T) {
	out := runSession(t, nil, `\gen 30
PATTERN e1 { ?A-?B; }
\gen 40
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes LIMIT 1;
\patterns
\quit
`)
	if !strings.Contains(out, "1 rows") || !strings.Contains(out, "PATTERN e1") {
		t.Fatalf("patterns did not survive graph switch:\n%s", out)
	}
}

func TestShellErrorsDoNotCrash(t *testing.T) {
	out := runSession(t, nil, `garbage statement;
\open /nonexistent/path
\gen notanumber
\unknowncmd
\help
\quit
`)
	for _, frag := range []string{"error:", "unknown command", "commands:"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestStatementComplete(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"SELECT ID;", true},
		{"SELECT ID", false},
		{"PATTERN p { ?A; }", true},
		{"PATTERN p { ?A;", false},
		{"PATTERN p { ?A; } SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes;", true},
		{"SELECT ID -- trailing comment\n;", true},
		{"SELECT 'unclosed;", false},
		{"", false},
	}
	for _, c := range cases {
		if got := statementComplete(c.src); got != c.want {
			t.Errorf("statementComplete(%q) = %v want %v", c.src, got, c.want)
		}
	}
}

func TestShellRowLimitTruncation(t *testing.T) {
	out := runSession(t, nil, `\gen 100
PATTERN n1 { ?A; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 0)) FROM nodes;
\quit
`)
	if !strings.Contains(out, "more rows; use LIMIT") {
		t.Fatalf("expected truncation notice:\n%s", out)
	}
}

func TestShellSaveGraph(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "out.egoc")
	txt := filepath.Join(dir, "out.txt")
	out := runSession(t, nil, "\\gen 40\n\\save "+bin+"\n\\save "+txt+"\n\\save\n\\quit\n")
	if strings.Count(out, "saved ") != 2 || !strings.Contains(out, "usage: \\save") {
		t.Fatalf("save output wrong:\n%s", out)
	}
	g, err := storage.Load(bin)
	if err != nil || g.NumNodes() != 40 {
		t.Fatalf("saved binary graph unusable: %v", err)
	}
	g2, err := storage.LoadText(txt)
	if err != nil || g2.NumNodes() != 40 {
		t.Fatalf("saved text graph unusable: %v", err)
	}
}

func TestShellIngestAndSnapshot(t *testing.T) {
	el := filepath.Join(t.TempDir(), "inc.el")
	var b strings.Builder
	b.WriteString("# streamed mutations\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "%d %d\n", i, i+1)
	}
	b.WriteString("node 5 label=hub\n")
	b.WriteString("edge 2 40 weight=3\n")
	if err := os.WriteFile(el, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	sh := newShell(&out, 1)
	sh.run(strings.NewReader("\\snapshot\n\\gen 20\n\\ingest " + el + "\n\\quit\n"))
	sh.ingestWG.Wait()

	if sh.writer == nil {
		t.Fatalf("ingest did not promote the graph to a writer:\n%s", out.String())
	}
	st := sh.writer.Stats()
	if st.Nodes != 41 {
		t.Fatalf("nodes = %d, want 41 (ids are literal, extended to the max seen)", st.Nodes)
	}
	if st.PendingOps != 0 {
		t.Fatalf("ingest left %d unpublished ops", st.PendingOps)
	}
	snap := sh.writer.Snapshot()
	if snap.Epoch() == 0 {
		t.Fatal("ingest published nothing")
	}
	if got := snap.Graph().LabelString(5); got != "hub" {
		t.Fatalf("node 5 label = %q, want hub", got)
	}
	sh.command(`\snapshot`)
	for _, frag := range []string{
		"static graph (no writer)", // before \gen+\ingest
		"ingesting " + el,
		"ingest done",
		fmt.Sprintf("epoch %d", snap.Epoch()),
	} {
		if !strings.Contains(out.String(), frag) {
			t.Fatalf("output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestShellIngestQueriesStaySnapshotConsistent(t *testing.T) {
	// A query executed mid-ingest must pin one version: rerunning the same
	// census on the snapshot the table was stamped with reproduces it.
	el := filepath.Join(t.TempDir(), "grow.el")
	var b strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, "%d %d\n", i, (i*7+3)%400)
	}
	if err := os.WriteFile(el, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh := newShell(&out, 1)
	sh.run(strings.NewReader("\\gen 50\n\\ingest " + el + `
PATTERN e1 { ?A-?B; }
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes LIMIT 2;
\quit
`))
	sh.ingestWG.Wait()
	if s := out.String(); !strings.Contains(s, "2 rows") || strings.Contains(s, "error:") {
		t.Fatalf("query during ingest failed:\n%s", s)
	}
}

func TestShellIngestErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.el")
	if err := os.WriteFile(bad, []byte("0 1\ngarbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh := newShell(&out, 1)
	sh.run(strings.NewReader("\\ingest " + filepath.Join(dir, "missing.el") + "\n\\gen 10\n\\ingest " + bad + "\n\\quit\n"))
	sh.ingestWG.Wait()
	for _, frag := range []string{"error:", "failed: line 2", "published through epoch"} {
		if !strings.Contains(out.String(), frag) {
			t.Fatalf("output missing %q:\n%s", frag, out.String())
		}
	}
	// The well-formed prefix was still published.
	if st := sh.writer.Stats(); st.Epoch == 0 || st.Nodes != 10 {
		t.Fatalf("prefix not published: %+v", st)
	}
}

func TestShellIngestBlocksGraphSwitch(t *testing.T) {
	var out strings.Builder
	sh := newShell(&out, 1)
	sh.run(strings.NewReader("\\gen 10\n\\quit\n"))
	// Simulate a running ingest and check the guards refuse.
	sh.writer = graph.NewShardedWriter(gen.ErdosRenyi(5, 5, 1), 1)
	sh.ingestFile = "busy.el"
	sh.ingestActive.Store(true)
	sh.command(`\gen 20`)
	sh.command(`\open nowhere.egoc`)
	sh.ingestActive.Store(false)
	if strings.Count(out.String(), "ingest of busy.el is running") != 2 {
		t.Fatalf("guards did not refuse during ingest:\n%s", out.String())
	}
}

func TestShellDotExport(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "ego.dot")
	out := runSession(t, nil, "\\gen 50\n\\dot 0 1 "+dot+"\n\\dot 9999 1 x\n\\quit\n")
	if !strings.Contains(out, "wrote "+dot) || !strings.Contains(out, "invalid node") {
		t.Fatalf("dot output wrong:\n%s", out)
	}
	data, err := os.ReadFile(dot)
	if err != nil || !strings.Contains(string(data), "graph") {
		t.Fatalf("dot file unusable: %v", err)
	}
}
