package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"egocensus/internal/gen"
	"egocensus/internal/storage"
)

func runSession(t *testing.T, setup func(sh *shell), input string) string {
	t.Helper()
	var out strings.Builder
	sh := newShell(&out, 1)
	if setup != nil {
		setup(sh)
	}
	sh.run(strings.NewReader(input))
	return out.String()
}

func TestShellGenAndQuery(t *testing.T) {
	out := runSession(t, nil, `\gen 200 2
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes ORDER BY COUNT DESC LIMIT 3;
\quit
`)
	for _, frag := range []string{"generated 200 nodes", "3 rows", "COUNTP(tri)"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellMultilineStatement(t *testing.T) {
	out := runSession(t, nil, `\gen 50
PATTERN sq {
  ?A-?B; ?B-?C;
  ?C-?D; ?D-?A;
}
SELECT ID, COUNTP(sq, SUBGRAPH(ID, 2)) FROM nodes LIMIT 2;
\quit
`)
	if !strings.Contains(out, "2 rows") {
		t.Fatalf("multiline statement failed:\n%s", out)
	}
}

func TestShellOpenGraph(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 5)
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.egoc")
	txt := filepath.Join(dir, "g.txt")
	if err := storage.Save(bin, g); err != nil {
		t.Fatal(err)
	}
	if err := storage.SaveText(txt, g); err != nil {
		t.Fatal(err)
	}
	out := runSession(t, nil, "\\open "+bin+"\n\\open "+txt+"\n\\quit\n")
	// Binary stores open lazily (planning against resident statistics);
	// text files load eagerly.
	if !strings.Contains(out, "opened "+bin) || !strings.Contains(out, "deferred load") {
		t.Fatalf("expected deferred binary open:\n%s", out)
	}
	if !strings.Contains(out, "loaded "+txt) {
		t.Fatalf("expected eager text load:\n%s", out)
	}
}

func TestShellOpenBinaryQueriesLazily(t *testing.T) {
	g := gen.ErdosRenyi(30, 60, 5)
	bin := filepath.Join(t.TempDir(), "g.egoc")
	if err := storage.Save(bin, g); err != nil {
		t.Fatal(err)
	}
	out := runSession(t, nil, "\\open "+bin+`
PATTERN e1 { ?A-?B; }
\explain SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes LIMIT 3;
\quit
`)
	for _, frag := range []string{"deferred load", "Plan [cost-based", "<- chosen", "3 rows"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellTimingToggle(t *testing.T) {
	out := runSession(t, nil, `\gen 50
\timing
PATTERN e1 { ?A-?B; }
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes LIMIT 2;
\timing
\quit
`)
	for _, frag := range []string{"timing: on", "plan ", "focal-select ", "census ", "render ", "timing: off"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellAlgAndStats(t *testing.T) {
	out := runSession(t, nil, `\gen 100
\alg pt-opt
\alg bogus
\alg auto
\stats
\quit
`)
	for _, frag := range []string{"algorithm: PT-OPT", "unknown algorithm", "algorithm: auto", "degree min/mean"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellPatternsPersistAcrossGraphs(t *testing.T) {
	out := runSession(t, nil, `\gen 30
PATTERN e1 { ?A-?B; }
\gen 40
SELECT ID, COUNTP(e1, SUBGRAPH(ID, 1)) FROM nodes LIMIT 1;
\patterns
\quit
`)
	if !strings.Contains(out, "1 rows") || !strings.Contains(out, "PATTERN e1") {
		t.Fatalf("patterns did not survive graph switch:\n%s", out)
	}
}

func TestShellErrorsDoNotCrash(t *testing.T) {
	out := runSession(t, nil, `garbage statement;
\open /nonexistent/path
\gen notanumber
\unknowncmd
\help
\quit
`)
	for _, frag := range []string{"error:", "unknown command", "commands:"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestStatementComplete(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"SELECT ID;", true},
		{"SELECT ID", false},
		{"PATTERN p { ?A; }", true},
		{"PATTERN p { ?A;", false},
		{"PATTERN p { ?A; } SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes;", true},
		{"SELECT ID -- trailing comment\n;", true},
		{"SELECT 'unclosed;", false},
		{"", false},
	}
	for _, c := range cases {
		if got := statementComplete(c.src); got != c.want {
			t.Errorf("statementComplete(%q) = %v want %v", c.src, got, c.want)
		}
	}
}

func TestShellRowLimitTruncation(t *testing.T) {
	out := runSession(t, nil, `\gen 100
PATTERN n1 { ?A; }
SELECT ID, COUNTP(n1, SUBGRAPH(ID, 0)) FROM nodes;
\quit
`)
	if !strings.Contains(out, "more rows; use LIMIT") {
		t.Fatalf("expected truncation notice:\n%s", out)
	}
}

func TestShellSaveGraph(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "out.egoc")
	txt := filepath.Join(dir, "out.txt")
	out := runSession(t, nil, "\\gen 40\n\\save "+bin+"\n\\save "+txt+"\n\\save\n\\quit\n")
	if strings.Count(out, "saved ") != 2 || !strings.Contains(out, "usage: \\save") {
		t.Fatalf("save output wrong:\n%s", out)
	}
	g, err := storage.Load(bin)
	if err != nil || g.NumNodes() != 40 {
		t.Fatalf("saved binary graph unusable: %v", err)
	}
	g2, err := storage.LoadText(txt)
	if err != nil || g2.NumNodes() != 40 {
		t.Fatalf("saved text graph unusable: %v", err)
	}
}

func TestShellDotExport(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "ego.dot")
	out := runSession(t, nil, "\\gen 50\n\\dot 0 1 "+dot+"\n\\dot 9999 1 x\n\\quit\n")
	if !strings.Contains(out, "wrote "+dot) || !strings.Contains(out, "invalid node") {
		t.Fatalf("dot output wrong:\n%s", out)
	}
	data, err := os.ReadFile(dot)
	if err != nil || !strings.Contains(string(data), "graph") {
		t.Fatalf("dot file unusable: %v", err)
	}
}
