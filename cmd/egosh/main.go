// Command egosh is an interactive shell for ego-centric pattern census
// queries: load or generate a graph, declare patterns, and run SELECT
// statements, with results printed as tables.
//
//	$ egosh -graph g.egoc
//	egosh> PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
//	egosh> SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes
//	       ORDER BY COUNT DESC LIMIT 5;
//
// Statements may span lines; they execute when braces are balanced and the
// line ends with ';'. Shell commands start with a backslash:
//
//	\open <file>          load a graph (binary .egoc opens lazily, text loads)
//	\save <file>          save the current graph
//	\gen <nodes> [labels] generate a preferential-attachment graph
//	\alg <name|auto>      force an algorithm (ND-PVOT, PT-OPT, ...)
//	\workers <n|auto>     parallel workers for the counting phase
//	\explain <query>      show the optimized plan without executing
//	\prepare <name> <q>   compile a parameterized statement once
//	\execute <name> [k=v] run a prepared statement with $name bindings
//	\timing               toggle per-stage timing after each query
//	\ingest <file> [P]    stream a text edge list through P ingest lanes
//	\snapshot             show the writer's epoch, overlay, and ingest state
//	\dot <node> <k> <f>   export an ego subgraph as Graphviz DOT
//	\stats                print graph statistics
//	\patterns             list declared patterns
//	\help                 show this help
//	\quit                 exit (aliases: \q, \exit)
//
// \ingest runs in the background: mutations are staged through the MVCC
// writer and published in batches, so SELECTs keep answering against
// consistent pinned snapshots while the graph grows underneath them.
//
// Ctrl-C cancels the query in flight (printing any partial results) and
// returns to the prompt; a second Ctrl-C, or one at an idle prompt, exits.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/stats"
	"egocensus/internal/storage"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file to load on startup")
		seed      = flag.Int64("seed", 1, "seed for \\gen and RND()")
	)
	flag.Parse()
	sh := newShell(os.Stdout, *seed)
	if *graphPath != "" {
		if err := sh.open(*graphPath); err != nil {
			fmt.Fprintf(os.Stderr, "egosh: %v\n", err)
			os.Exit(1)
		}
	}
	// Ctrl-C cancels the in-flight query and returns to the prompt; with
	// no query running (including a second Ctrl-C after a cancellation)
	// it exits the shell.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		for range sigc {
			if !sh.cancelInflight() {
				fmt.Fprintln(os.Stderr, "\negosh: interrupt")
				os.Exit(130)
			}
		}
	}()
	sh.run(os.Stdin)
}

// shell holds REPL state; it is separated from main for testability.
type shell struct {
	out     io.Writer
	engine  *core.Engine
	seed    int64
	alg     core.Algorithm
	workers int
	timing  bool

	// writer is non-nil once the session graph went live (\ingest): the
	// engine then pins a fresh snapshot per query while the writer
	// publishes mutation batches underneath it.
	// prepared holds \prepare'd statements; adopting a new engine clears
	// it (compiled statements are bound to the engine they came from).
	prepared map[string]*core.Prepared

	writer       *graph.ShardedWriter
	ingestActive atomic.Bool
	ingestFile   string       // set by the REPL goroutine while inactive
	ingestOps    atomic.Int64 // mutations staged by the running ingest
	ingestWG     sync.WaitGroup

	mu       sync.Mutex
	inflight context.CancelFunc // non-nil while a query is executing
}

// syncWriter serializes writes so the background ingest goroutine can
// report completion without racing the REPL's own output.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (sw *syncWriter) Write(p []byte) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Write(p)
}

// cancelInflight cancels the executing query, if any, reporting whether
// there was one to cancel.
func (sh *shell) cancelInflight() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.inflight == nil {
		return false
	}
	sh.inflight()
	sh.inflight = nil
	fmt.Fprintln(sh.out, "canceling query...")
	return true
}

// beginQuery installs ctx's cancel as the in-flight query; endQuery
// clears it.
func (sh *shell) beginQuery(cancel context.CancelFunc) {
	sh.mu.Lock()
	sh.inflight = cancel
	sh.mu.Unlock()
}

func (sh *shell) endQuery() {
	sh.mu.Lock()
	sh.inflight = nil
	sh.mu.Unlock()
}

func newShell(out io.Writer, seed int64) *shell {
	sh := &shell{out: &syncWriter{w: out}, seed: seed, workers: core.DefaultWorkers()}
	sh.setGraph(graph.New(false))
	return sh
}

func (sh *shell) setGraph(g *graph.Graph) {
	sh.writer = nil
	sh.adoptEngine(core.NewEngine(g))
}

// adoptEngine installs a new engine, carrying declared patterns and
// session settings across graph switches.
func (sh *shell) adoptEngine(e *core.Engine) {
	if sh.engine != nil {
		for _, p := range sh.engine.Patterns() {
			if err := e.DefinePattern(p); err != nil {
				fmt.Fprintf(sh.out, "warning: %v\n", err)
			}
		}
	}
	e.Seed = sh.seed
	e.Alg = sh.alg
	e.Opt.Workers = sh.workers
	sh.engine = e
	if len(sh.prepared) > 0 {
		fmt.Fprintf(sh.out, "note: %d prepared statement(s) dropped (graph changed)\n", len(sh.prepared))
	}
	sh.prepared = map[string]*core.Prepared{}
}

func (sh *shell) open(path string) error {
	if strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".tsv") || strings.HasSuffix(path, ".el") {
		g, err := storage.LoadText(path)
		if err != nil {
			return err
		}
		sh.setGraph(g)
		fmt.Fprintf(sh.out, "loaded %s: %d nodes, %d edges\n", path, g.NumNodes(), g.NumEdges())
		return nil
	}
	// Binary stores open as a plan.Source: the shell can plan and EXPLAIN
	// against the resident statistics; the graph materializes on the first
	// executing query.
	st, err := storage.Open(path, 0)
	if err != nil {
		return err
	}
	sh.writer = nil
	sh.adoptEngine(core.NewEngineFromSource(st))
	s, err := st.GraphStats()
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "opened %s: %d nodes, %d edges, %d labels (deferred load)\n",
		path, s.Nodes, s.Edges, s.NumLabels())
	return nil
}

// ingestBlocked refuses graph-replacing commands while an ingest is
// mutating the live writer.
func (sh *shell) ingestBlocked() bool {
	if sh.ingestActive.Load() {
		fmt.Fprintf(sh.out, "error: ingest of %s is running; wait for it to finish (\\snapshot shows progress)\n", sh.ingestFile)
		return true
	}
	return false
}

// goLive promotes the session graph to a mutating one: the current graph
// is frozen as epoch 0 under a sharded writer and the engine is replaced
// by a live engine that pins a fresh snapshot per query. shards > 1
// partitions staging into independent ingest lanes (0 keeps the current
// writer's shard count, or 1 lane for a fresh writer).
func (sh *shell) goLive(shards int) bool {
	if sh.writer != nil {
		if shards > 1 && sh.writer.Shards() != shards {
			fmt.Fprintf(sh.out, "error: session is already live with %d shard(s)\n", sh.writer.Shards())
			return false
		}
		return true
	}
	g := sh.graphOrComplain()
	if g == nil {
		return false
	}
	if shards < 1 {
		shards = 1
	}
	sh.writer = graph.NewShardedWriter(g, shards)
	sh.adoptEngine(core.NewEngineLiveSharded(sh.writer))
	return true
}

// startIngest begins streaming a text edge list through the writer in the
// background. The file uses the storage text format conventions: bare
// "<a> <b>" pairs, "edge <a> <b> [k=v ...]", "node <id> [k=v ...]", '#'
// comments. Node IDs are literal: referencing an ID beyond the current
// graph creates the nodes up to it.
func (sh *shell) startIngest(path string, shards int) {
	if sh.ingestActive.Load() {
		fmt.Fprintf(sh.out, "error: ingest of %s already running\n", sh.ingestFile)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(sh.out, "error: %v\n", err)
		return
	}
	if !sh.goLive(shards) {
		f.Close()
		return
	}
	sh.ingestFile = path
	sh.ingestOps.Store(0)
	sh.ingestActive.Store(true)
	sh.ingestWG.Add(1)
	go sh.runIngest(path, f)
	fmt.Fprintf(sh.out, "ingesting %s in the background; queries keep running against pinned snapshots\n", path)
}

// runIngest is the background ingest worker: it stages mutations through
// the writer and publishes a snapshot every ingestBatchOps operations, so
// progress becomes visible to queries incrementally.
func (sh *shell) runIngest(path string, f *os.File) {
	defer sh.ingestWG.Done()
	defer sh.ingestActive.Store(false)
	defer f.Close()
	const ingestBatchOps = 1000
	w := sh.writer
	nodes := w.Stats().Nodes
	node := func(tok string) (graph.NodeID, error) {
		id, err := strconv.ParseUint(tok, 10, 31)
		if err != nil {
			return 0, fmt.Errorf("invalid node id %q", tok)
		}
		if int(id) >= nodes {
			w.AddNodes(int(id) - nodes + 1)
			sh.ingestOps.Add(int64(int(id) - nodes + 1))
			nodes = int(id) + 1
		}
		return graph.NodeID(id), nil
	}
	attrs := func(fields []string, set func(k, v string)) error {
		for _, fl := range fields {
			eq := strings.IndexByte(fl, '=')
			if eq <= 0 {
				return fmt.Errorf("malformed attribute %q", fl)
			}
			set(fl[:eq], fl[eq+1:])
			sh.ingestOps.Add(1)
		}
		return nil
	}
	edge := func(a, b string, rest []string) error {
		from, err := node(a)
		if err != nil {
			return err
		}
		to, err := node(b)
		if err != nil {
			return err
		}
		e := w.AddEdge(from, to)
		sh.ingestOps.Add(1)
		return attrs(rest, func(k, v string) { w.SetEdgeAttr(e, k, v) })
	}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	var lineErr error
	for sc.Scan() && lineErr == nil {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "graph":
			// Direction is fixed by the live graph; the header is advisory.
		case fields[0] == "node" && len(fields) >= 2:
			var id graph.NodeID
			if id, lineErr = node(fields[1]); lineErr == nil {
				lineErr = attrs(fields[2:], func(k, v string) { w.SetNodeAttr(id, k, v) })
			}
		case fields[0] == "edge" && len(fields) >= 3:
			lineErr = edge(fields[1], fields[2], fields[3:])
		case fields[0] != "edge" && fields[0] != "node" && len(fields) >= 2:
			lineErr = edge(fields[0], fields[1], fields[2:])
		default:
			lineErr = fmt.Errorf("unrecognized record %q", line)
		}
		if w.Pending() >= ingestBatchOps {
			if _, err := w.Publish(); err != nil {
				lineErr = err
				break
			}
		}
	}
	if lineErr == nil {
		lineErr = sc.Err()
	} else if lineNo > 0 {
		lineErr = fmt.Errorf("line %d: %w", lineNo, lineErr)
	}
	// Publish whatever parsed cleanly, then report.
	snap, pubErr := w.Publish()
	switch {
	case lineErr != nil:
		fmt.Fprintf(sh.out, "\ningest %s failed: %v (published through epoch %d)\n", path, lineErr, w.Snapshot().Epoch())
	case pubErr != nil:
		fmt.Fprintf(sh.out, "\ningest %s: publish failed: %v\n", path, pubErr)
	default:
		fmt.Fprintf(sh.out, "\ningest done: %s, %d ops, epoch %d (%d nodes, %d edges)\n",
			path, sh.ingestOps.Load(), snap.Epoch(), snap.NumNodes(), snap.NumEdges())
	}
}

// printSnapshot reports the writer's published version and overlay shape.
func (sh *shell) printSnapshot() {
	if sh.writer == nil {
		fmt.Fprintln(sh.out, "static graph (no writer); \\ingest makes it live")
		return
	}
	st := sh.writer.Stats()
	fmt.Fprintf(sh.out, "epoch %d: %d nodes, %d edges (%d ops published, %d pending)\n",
		st.Epoch, st.Nodes, st.Edges, st.OpsPublished, st.PendingOps)
	if st.CSRBuilt {
		fmt.Fprintf(sh.out, "csr overlay: %d rows awaiting compaction, %d background compactions done\n",
			st.OverlayRows, st.Compactions)
	} else {
		fmt.Fprintln(sh.out, "csr: not built yet (the first traversal builds it)")
	}
	if sh.writer.Shards() > 1 {
		for _, ss := range sh.writer.ShardStats() {
			state := "ok"
			if ss.Degraded {
				state = "degraded"
			}
			fmt.Fprintf(sh.out, "shard %d: %d pending ops, %s\n", ss.Shard, ss.PendingOps, state)
		}
	}
	if sh.ingestActive.Load() {
		fmt.Fprintf(sh.out, "ingest running: %s (%d ops staged so far)\n", sh.ingestFile, sh.ingestOps.Load())
	}
}

// graphOrComplain hydrates the engine's graph for commands that need it.
func (sh *shell) graphOrComplain() *graph.Graph {
	g, err := sh.engine.Graph()
	if err != nil {
		fmt.Fprintf(sh.out, "error: %v\n", err)
		return nil
	}
	return g
}

func (sh *shell) run(in io.Reader) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(sh.out, "egosh> ")
		} else {
			fmt.Fprint(sh.out, "  ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !sh.command(trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if statementComplete(buf.String()) {
			sh.execute(buf.String())
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 {
		sh.execute(buf.String())
	}
	fmt.Fprintln(sh.out)
}

// statementComplete reports whether the buffered text forms complete
// statements: balanced braces/parens and, outside any braces, a trailing
// ';' (or a PATTERN block that just closed).
func statementComplete(src string) bool {
	depth := 0
	inString := byte(0)
	lastMeaningful := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inString != 0 {
			if c == inString {
				inString = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inString = c
		case '{', '(':
			depth++
		case '}', ')':
			depth--
		case '-':
			if i+1 < len(src) && src[i+1] == '-' {
				// comment to end of line
				for i < len(src) && src[i] != '\n' {
					i++
				}
				continue
			}
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			lastMeaningful = c
		}
	}
	if depth != 0 || inString != 0 {
		return false
	}
	return lastMeaningful == ';' || lastMeaningful == '}'
}

func (sh *shell) execute(src string) {
	if strings.TrimSpace(src) == "" {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	sh.beginQuery(cancel)
	tables, err := sh.engine.ExecuteContext(ctx, src)
	sh.endQuery()
	cancel()
	if err != nil {
		sh.printFailure(err)
		return
	}
	if len(tables) == 0 {
		fmt.Fprintln(sh.out, "ok")
		return
	}
	for _, t := range tables {
		fmt.Fprintf(sh.out, "-- %s, %d matches, %d rows, %v\n",
			t.Algorithm, t.NumMatches, len(t.Rows), t.Elapsed)
		if sh.timing {
			sh.printTiming(t)
		}
		sh.printRows(t)
	}
}

// executePrepared runs one prepared statement with the given bindings,
// sharing the inflight/cancel bookkeeping and output paths with execute.
func (sh *shell) executePrepared(p *core.Prepared, params map[string]string) {
	ctx, cancel := context.WithCancel(context.Background())
	sh.beginQuery(cancel)
	t, err := p.ExecuteContext(ctx, params, core.ExecOptions{})
	sh.endQuery()
	cancel()
	if err != nil {
		sh.printFailure(err)
		return
	}
	fmt.Fprintf(sh.out, "-- %s, %d matches, %d rows, %v\n",
		t.Algorithm, t.NumMatches, len(t.Rows), t.Elapsed)
	if sh.timing {
		sh.printTiming(t)
	}
	sh.printRows(t)
}

// printRows prints a table's rows, truncated for terminal sanity.
func (sh *shell) printRows(t *core.Table) {
	limit := 40
	if len(t.Rows) > limit {
		trimmed := *t
		trimmed.Rows = t.Rows[:limit]
		fmt.Fprint(sh.out, core.FormatTable(&trimmed))
		fmt.Fprintf(sh.out, "... (%d more rows; use LIMIT)\n", len(t.Rows)-limit)
		return
	}
	fmt.Fprint(sh.out, core.FormatTable(t))
}

// printFailure reports a failed query. Cancellation and limit failures
// print the rows produced before the stop; internal errors print the
// plan that was executing.
func (sh *shell) printFailure(err error) {
	var ce *core.CanceledError
	var le *core.LimitError
	var ie *core.InternalError
	var partial *core.Table
	switch {
	case errors.As(err, &ce):
		partial = ce.PartialTable
	case errors.As(err, &le):
		partial = le.PartialTable
	case errors.As(err, &ie):
		fmt.Fprintf(sh.out, "error: %v\n", err)
		if ie.Plan != "" {
			fmt.Fprintf(sh.out, "plan was:\n%s", ie.Plan)
		}
		return
	}
	if partial != nil && len(partial.Rows) > 0 {
		fmt.Fprintf(sh.out, "-- partial results (%d rows before the query stopped)\n", len(partial.Rows))
		sh.printRows(partial)
	}
	fmt.Fprintf(sh.out, "error: %v\n", err)
}

// printTiming prints the per-stage breakdown of one executed query.
func (sh *shell) printTiming(t *core.Table) {
	st := t.Stats
	if st.ResultCached {
		fmt.Fprintln(sh.out, "   result served from cache (no execution)")
		return
	}
	focal := "pairs from match set"
	if st.FocalCount >= 0 {
		focal = fmt.Sprintf("%d focal", st.FocalCount)
	}
	planNote := ""
	if st.PlanCached {
		planNote = " (cached)"
	}
	fmt.Fprintf(sh.out, "   plan %v%s | focal-select %v (%s) | census %v (|M|=%d) | render %v (%d rows)\n",
		st.PlanTime, planNote, st.FocalTime, focal, st.CensusTime, st.MatchSetSize, st.RenderTime, st.Rows)
}

// command handles a backslash command; it returns false to exit the shell.
func (sh *shell) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`, `\exit`:
		return false
	case `\help`:
		fmt.Fprint(sh.out, `statements: PATTERN name { ... }  |  SELECT ... FROM nodes ... ;
commands:
  \open <file>           load a graph (.egoc binary, .txt/.tsv/.el text)
  \save <file>           save the current graph
  \gen <nodes> [labels]  generate a preferential-attachment graph (|E|=5|V|)
  \alg <name|auto>       force ND-BAS/ND-DIFF/ND-PVOT/PT-BAS/PT-RND/PT-OPT
  \workers <n|auto>      parallel workers for the counting phase (auto = one per CPU; out-of-range values are clamped)
  \explain <query>       show the optimized plan without executing
  \prepare <name> <stmt> compile one SELECT once; $param placeholders allowed
  \execute <name> [k=v]  run a prepared statement with parameter bindings
  \timing                toggle per-stage timing after each query
  \ingest <file> [P]     stream a text edge list through P shard lanes
                         in the background (queries stay snapshot-consistent)
  \snapshot              writer epoch, delta-overlay size, ingest progress
  \dot <node> <k> <file> export S(node, k) as Graphviz DOT
  \stats                 graph statistics
  \patterns              list declared patterns
  \help                  show this help
  \quit                  exit (aliases: \q, \exit)
`)
	case `\timing`:
		sh.timing = !sh.timing
		state := "off"
		if sh.timing {
			state = "on"
		}
		fmt.Fprintf(sh.out, "timing: %s\n", state)
	case `\explain`:
		q := strings.TrimSpace(strings.TrimPrefix(line, `\explain`))
		if q == "" {
			fmt.Fprintln(sh.out, "usage: \\explain SELECT ...")
			break
		}
		if !strings.HasSuffix(q, ";") {
			q += ";"
		}
		sh.execute("EXPLAIN " + q)
	case `\prepare`:
		rest := strings.TrimSpace(strings.TrimPrefix(line, `\prepare`))
		sp := strings.IndexAny(rest, " \t")
		if rest == "" || sp < 0 {
			fmt.Fprintln(sh.out, "usage: \\prepare <name> SELECT ...")
			break
		}
		name, text := rest[:sp], strings.TrimSpace(rest[sp:])
		if !strings.HasSuffix(text, ";") {
			text += ";"
		}
		p, err := sh.engine.Prepare(text)
		if err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
			break
		}
		if _, exists := sh.prepared[name]; exists {
			fmt.Fprintf(sh.out, "replacing prepared statement %s\n", name)
		}
		sh.prepared[name] = p
		if params := p.Params(); len(params) > 0 {
			fmt.Fprintf(sh.out, "prepared %s (params: $%s)\n", name, strings.Join(params, ", $"))
		} else {
			fmt.Fprintf(sh.out, "prepared %s (no params)\n", name)
		}
	case `\execute`:
		if len(fields) < 2 {
			fmt.Fprintln(sh.out, "usage: \\execute <name> [param=value ...]")
			break
		}
		p, ok := sh.prepared[fields[1]]
		if !ok {
			fmt.Fprintf(sh.out, "error: no prepared statement %q (see \\prepare)\n", fields[1])
			break
		}
		params := make(map[string]string, len(fields)-2)
		bad := false
		for _, f := range fields[2:] {
			k, v, found := strings.Cut(f, "=")
			if !found || k == "" {
				fmt.Fprintf(sh.out, "error: bindings are param=value, got %q\n", f)
				bad = true
				break
			}
			params[k] = v
		}
		if bad {
			break
		}
		sh.executePrepared(p, params)
	case `\save`:
		if len(fields) != 2 {
			fmt.Fprintln(sh.out, "usage: \\save <file>")
			break
		}
		g := sh.graphOrComplain()
		if g == nil {
			break
		}
		path := fields[1]
		var err error
		if strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".tsv") || strings.HasSuffix(path, ".el") {
			err = storage.SaveText(path, g)
		} else {
			err = storage.Save(path, g)
		}
		if err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(sh.out, "saved %s (%d nodes, %d edges)\n", path, g.NumNodes(), g.NumEdges())
	case `\open`:
		if len(fields) != 2 {
			fmt.Fprintln(sh.out, "usage: \\open <file>")
			break
		}
		if sh.ingestBlocked() {
			break
		}
		if err := sh.open(fields[1]); err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
		}
	case `\ingest`:
		if len(fields) != 2 && len(fields) != 3 {
			fmt.Fprintln(sh.out, "usage: \\ingest <file> [shards]")
			break
		}
		shards := 0
		if len(fields) == 3 {
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 1 {
				fmt.Fprintf(sh.out, "error: invalid shard count %q\n", fields[2])
				break
			}
			shards = n
		}
		sh.startIngest(fields[1], shards)
	case `\snapshot`:
		sh.printSnapshot()
	case `\gen`:
		if len(fields) < 2 {
			fmt.Fprintln(sh.out, "usage: \\gen <nodes> [labels]")
			break
		}
		if sh.ingestBlocked() {
			break
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			fmt.Fprintln(sh.out, "error: invalid node count")
			break
		}
		labels := 0
		if len(fields) > 2 {
			if labels, err = strconv.Atoi(fields[2]); err != nil || labels < 0 {
				fmt.Fprintln(sh.out, "error: invalid label count")
				break
			}
		}
		g := gen.PreferentialAttachment(n, 5, sh.seed)
		if labels > 0 {
			gen.AssignLabels(g, labels, sh.seed+1)
		}
		sh.setGraph(g)
		fmt.Fprintf(sh.out, "generated %d nodes, %d edges, %d labels\n", g.NumNodes(), g.NumEdges(), labels)
	case `\alg`:
		if len(fields) != 2 {
			fmt.Fprintln(sh.out, "usage: \\alg <name|auto>")
			break
		}
		if fields[1] == "auto" {
			sh.alg = ""
		} else {
			sh.alg = core.Algorithm(strings.ToUpper(fields[1]))
			valid := false
			for _, a := range core.Algorithms {
				if a == sh.alg {
					valid = true
					break
				}
			}
			if !valid {
				fmt.Fprintf(sh.out, "error: unknown algorithm %q\n", fields[1])
				sh.alg = ""
				break
			}
		}
		sh.engine.Alg = sh.alg
		fmt.Fprintf(sh.out, "algorithm: %s\n", orAuto(string(sh.alg)))
	case `\workers`:
		if len(fields) != 2 {
			fmt.Fprintf(sh.out, "workers: %d (usage: \\workers <n|auto>)\n", sh.workers)
			break
		}
		if fields[1] == "auto" {
			sh.workers = core.DefaultWorkers()
		} else {
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Fprintln(sh.out, "error: workers must be an integer or auto")
				break
			}
			if eff := core.EffectiveWorkers(n); eff != n {
				fmt.Fprintf(sh.out, "workers: %d clamped to %d\n", n, eff)
				sh.workers = eff
			} else {
				sh.workers = n
			}
		}
		sh.engine.Opt.Workers = sh.workers
		fmt.Fprintf(sh.out, "workers: %d\n", sh.workers)
	case `\dot`:
		if len(fields) != 4 {
			fmt.Fprintln(sh.out, "usage: \\dot <node> <k> <file.dot>")
			break
		}
		g := sh.graphOrComplain()
		if g == nil {
			break
		}
		node, err1 := strconv.Atoi(fields[1])
		k, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || node < 0 || node >= g.NumNodes() || k < 0 {
			fmt.Fprintln(sh.out, "error: invalid node or radius")
			break
		}
		sg := g.EgoSubgraph(graph.NodeID(node), k)
		f, err := os.Create(fields[3])
		if err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
			break
		}
		ego := sg.ToLocal[graph.NodeID(node)]
		sg.G.SetNodeAttr(ego, "highlight", "lightblue")
		err = sg.G.WriteDOT(f, fmt.Sprintf("S(%d,%d)", node, k))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(sh.out, "wrote %s (%d nodes, %d edges)\n", fields[3], sg.G.NumNodes(), sg.G.NumEdges())
	case `\stats`:
		g := sh.graphOrComplain()
		if g == nil {
			break
		}
		ds := stats.Degrees(g)
		_, comps := stats.Components(g)
		fmt.Fprintf(sh.out, "nodes %d, edges %d, directed %v\n", g.NumNodes(), g.NumEdges(), g.Directed())
		fmt.Fprintf(sh.out, "degree min/mean/median/max: %d/%.1f/%.0f/%d\n", ds.Min, ds.Mean, ds.Median, ds.Max)
		fmt.Fprintf(sh.out, "components: %d (largest %d)\n", len(comps), largest(comps))
		fmt.Fprintf(sh.out, "clustering: %.4f, diameter >= %d\n",
			stats.GlobalClustering(g), stats.EstimateDiameter(g, 4))
	case `\patterns`:
		names := make([]string, 0)
		for name := range sh.engine.Patterns() {
			names = append(names, name)
		}
		if len(names) == 0 {
			fmt.Fprintln(sh.out, "(none)")
			break
		}
		sortStringsInPlace(names)
		for _, n := range names {
			fmt.Fprintln(sh.out, sh.engine.Patterns()[n].String())
		}
	default:
		fmt.Fprintf(sh.out, "unknown command %s (try \\help)\n", fields[0])
	}
	return true
}

func orAuto(s string) string {
	if s == "" {
		return "auto"
	}
	return s
}

func largest(sizes []int) int {
	if len(sizes) == 0 {
		return 0
	}
	return sizes[0]
}

func sortStringsInPlace(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
