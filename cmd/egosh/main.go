// Command egosh is an interactive shell for ego-centric pattern census
// queries: load or generate a graph, declare patterns, and run SELECT
// statements, with results printed as tables.
//
//	$ egosh -graph g.egoc
//	egosh> PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
//	egosh> SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes
//	       ORDER BY COUNT DESC LIMIT 5;
//
// Statements may span lines; they execute when braces are balanced and the
// line ends with ';'. Shell commands start with a backslash:
//
//	\open <file>          load a graph (binary .egoc opens lazily, text loads)
//	\gen <nodes> [labels] generate a preferential-attachment graph
//	\alg <name|auto>      force an algorithm (ND-PVOT, PT-OPT, ...)
//	\explain <query>      show the optimized plan without executing
//	\timing               toggle per-stage timing after each query
//	\stats                print graph statistics
//	\patterns             list declared patterns
//	\help                 show this help
//	\quit                 exit
//
// Ctrl-C cancels the query in flight (printing any partial results) and
// returns to the prompt; a second Ctrl-C, or one at an idle prompt, exits.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"

	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/stats"
	"egocensus/internal/storage"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file to load on startup")
		seed      = flag.Int64("seed", 1, "seed for \\gen and RND()")
	)
	flag.Parse()
	sh := newShell(os.Stdout, *seed)
	if *graphPath != "" {
		if err := sh.open(*graphPath); err != nil {
			fmt.Fprintf(os.Stderr, "egosh: %v\n", err)
			os.Exit(1)
		}
	}
	// Ctrl-C cancels the in-flight query and returns to the prompt; with
	// no query running (including a second Ctrl-C after a cancellation)
	// it exits the shell.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		for range sigc {
			if !sh.cancelInflight() {
				fmt.Fprintln(os.Stderr, "\negosh: interrupt")
				os.Exit(130)
			}
		}
	}()
	sh.run(os.Stdin)
}

// shell holds REPL state; it is separated from main for testability.
type shell struct {
	out     io.Writer
	engine  *core.Engine
	seed    int64
	alg     core.Algorithm
	workers int
	timing  bool

	mu       sync.Mutex
	inflight context.CancelFunc // non-nil while a query is executing
}

// cancelInflight cancels the executing query, if any, reporting whether
// there was one to cancel.
func (sh *shell) cancelInflight() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.inflight == nil {
		return false
	}
	sh.inflight()
	sh.inflight = nil
	fmt.Fprintln(sh.out, "canceling query...")
	return true
}

// beginQuery installs ctx's cancel as the in-flight query; endQuery
// clears it.
func (sh *shell) beginQuery(cancel context.CancelFunc) {
	sh.mu.Lock()
	sh.inflight = cancel
	sh.mu.Unlock()
}

func (sh *shell) endQuery() {
	sh.mu.Lock()
	sh.inflight = nil
	sh.mu.Unlock()
}

func newShell(out io.Writer, seed int64) *shell {
	sh := &shell{out: out, seed: seed, workers: core.DefaultWorkers()}
	sh.setGraph(graph.New(false))
	return sh
}

func (sh *shell) setGraph(g *graph.Graph) {
	sh.adoptEngine(core.NewEngine(g))
}

// adoptEngine installs a new engine, carrying declared patterns and
// session settings across graph switches.
func (sh *shell) adoptEngine(e *core.Engine) {
	if sh.engine != nil {
		for _, p := range sh.engine.Patterns() {
			if err := e.DefinePattern(p); err != nil {
				fmt.Fprintf(sh.out, "warning: %v\n", err)
			}
		}
	}
	e.Seed = sh.seed
	e.Alg = sh.alg
	e.Opt.Workers = sh.workers
	sh.engine = e
}

func (sh *shell) open(path string) error {
	if strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".tsv") || strings.HasSuffix(path, ".el") {
		g, err := storage.LoadText(path)
		if err != nil {
			return err
		}
		sh.setGraph(g)
		fmt.Fprintf(sh.out, "loaded %s: %d nodes, %d edges\n", path, g.NumNodes(), g.NumEdges())
		return nil
	}
	// Binary stores open as a plan.Source: the shell can plan and EXPLAIN
	// against the resident statistics; the graph materializes on the first
	// executing query.
	st, err := storage.Open(path, 0)
	if err != nil {
		return err
	}
	sh.adoptEngine(core.NewEngineFromSource(st))
	s, err := st.GraphStats()
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "opened %s: %d nodes, %d edges, %d labels (deferred load)\n",
		path, s.Nodes, s.Edges, s.NumLabels())
	return nil
}

// graphOrComplain hydrates the engine's graph for commands that need it.
func (sh *shell) graphOrComplain() *graph.Graph {
	g, err := sh.engine.Graph()
	if err != nil {
		fmt.Fprintf(sh.out, "error: %v\n", err)
		return nil
	}
	return g
}

func (sh *shell) run(in io.Reader) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(sh.out, "egosh> ")
		} else {
			fmt.Fprint(sh.out, "  ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if !sh.command(trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if statementComplete(buf.String()) {
			sh.execute(buf.String())
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 {
		sh.execute(buf.String())
	}
	fmt.Fprintln(sh.out)
}

// statementComplete reports whether the buffered text forms complete
// statements: balanced braces/parens and, outside any braces, a trailing
// ';' (or a PATTERN block that just closed).
func statementComplete(src string) bool {
	depth := 0
	inString := byte(0)
	lastMeaningful := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inString != 0 {
			if c == inString {
				inString = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inString = c
		case '{', '(':
			depth++
		case '}', ')':
			depth--
		case '-':
			if i+1 < len(src) && src[i+1] == '-' {
				// comment to end of line
				for i < len(src) && src[i] != '\n' {
					i++
				}
				continue
			}
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			lastMeaningful = c
		}
	}
	if depth != 0 || inString != 0 {
		return false
	}
	return lastMeaningful == ';' || lastMeaningful == '}'
}

func (sh *shell) execute(src string) {
	if strings.TrimSpace(src) == "" {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	sh.beginQuery(cancel)
	tables, err := sh.engine.ExecuteContext(ctx, src)
	sh.endQuery()
	cancel()
	if err != nil {
		sh.printFailure(err)
		return
	}
	if len(tables) == 0 {
		fmt.Fprintln(sh.out, "ok")
		return
	}
	for _, t := range tables {
		fmt.Fprintf(sh.out, "-- %s, %d matches, %d rows, %v\n",
			t.Algorithm, t.NumMatches, len(t.Rows), t.Elapsed)
		if sh.timing {
			sh.printTiming(t)
		}
		sh.printRows(t)
	}
}

// printRows prints a table's rows, truncated for terminal sanity.
func (sh *shell) printRows(t *core.Table) {
	limit := 40
	if len(t.Rows) > limit {
		trimmed := *t
		trimmed.Rows = t.Rows[:limit]
		fmt.Fprint(sh.out, core.FormatTable(&trimmed))
		fmt.Fprintf(sh.out, "... (%d more rows; use LIMIT)\n", len(t.Rows)-limit)
		return
	}
	fmt.Fprint(sh.out, core.FormatTable(t))
}

// printFailure reports a failed query. Cancellation and limit failures
// print the rows produced before the stop; internal errors print the
// plan that was executing.
func (sh *shell) printFailure(err error) {
	var ce *core.CanceledError
	var le *core.LimitError
	var ie *core.InternalError
	var partial *core.Table
	switch {
	case errors.As(err, &ce):
		partial = ce.PartialTable
	case errors.As(err, &le):
		partial = le.PartialTable
	case errors.As(err, &ie):
		fmt.Fprintf(sh.out, "error: %v\n", err)
		if ie.Plan != "" {
			fmt.Fprintf(sh.out, "plan was:\n%s", ie.Plan)
		}
		return
	}
	if partial != nil && len(partial.Rows) > 0 {
		fmt.Fprintf(sh.out, "-- partial results (%d rows before the query stopped)\n", len(partial.Rows))
		sh.printRows(partial)
	}
	fmt.Fprintf(sh.out, "error: %v\n", err)
}

// printTiming prints the per-stage breakdown of one executed query.
func (sh *shell) printTiming(t *core.Table) {
	st := t.Stats
	focal := "pairs from match set"
	if st.FocalCount >= 0 {
		focal = fmt.Sprintf("%d focal", st.FocalCount)
	}
	fmt.Fprintf(sh.out, "   plan %v | focal-select %v (%s) | census %v (|M|=%d) | render %v (%d rows)\n",
		st.PlanTime, st.FocalTime, focal, st.CensusTime, st.MatchSetSize, st.RenderTime, st.Rows)
}

// command handles a backslash command; it returns false to exit the shell.
func (sh *shell) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`, `\exit`:
		return false
	case `\help`:
		fmt.Fprint(sh.out, `statements: PATTERN name { ... }  |  SELECT ... FROM nodes ... ;
commands:
  \open <file>           load a graph (.egoc binary, .txt/.tsv/.el text)
  \save <file>           save the current graph
  \gen <nodes> [labels]  generate a preferential-attachment graph (|E|=5|V|)
  \alg <name|auto>       force ND-BAS/ND-DIFF/ND-PVOT/PT-BAS/PT-RND/PT-OPT
  \workers <n|auto>      parallel workers for the counting phase (auto = one per CPU)
  \explain <query>       show the optimized plan without executing
  \timing                toggle per-stage timing after each query
  \dot <node> <k> <file> export S(node, k) as Graphviz DOT
  \stats                 graph statistics
  \patterns              list declared patterns
  \quit                  exit
`)
	case `\timing`:
		sh.timing = !sh.timing
		state := "off"
		if sh.timing {
			state = "on"
		}
		fmt.Fprintf(sh.out, "timing: %s\n", state)
	case `\explain`:
		q := strings.TrimSpace(strings.TrimPrefix(line, `\explain`))
		if q == "" {
			fmt.Fprintln(sh.out, "usage: \\explain SELECT ...")
			break
		}
		if !strings.HasSuffix(q, ";") {
			q += ";"
		}
		sh.execute("EXPLAIN " + q)
	case `\save`:
		if len(fields) != 2 {
			fmt.Fprintln(sh.out, "usage: \\save <file>")
			break
		}
		g := sh.graphOrComplain()
		if g == nil {
			break
		}
		path := fields[1]
		var err error
		if strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".tsv") || strings.HasSuffix(path, ".el") {
			err = storage.SaveText(path, g)
		} else {
			err = storage.Save(path, g)
		}
		if err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(sh.out, "saved %s (%d nodes, %d edges)\n", path, g.NumNodes(), g.NumEdges())
	case `\open`:
		if len(fields) != 2 {
			fmt.Fprintln(sh.out, "usage: \\open <file>")
			break
		}
		if err := sh.open(fields[1]); err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
		}
	case `\gen`:
		if len(fields) < 2 {
			fmt.Fprintln(sh.out, "usage: \\gen <nodes> [labels]")
			break
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			fmt.Fprintln(sh.out, "error: invalid node count")
			break
		}
		labels := 0
		if len(fields) > 2 {
			if labels, err = strconv.Atoi(fields[2]); err != nil || labels < 0 {
				fmt.Fprintln(sh.out, "error: invalid label count")
				break
			}
		}
		g := gen.PreferentialAttachment(n, 5, sh.seed)
		if labels > 0 {
			gen.AssignLabels(g, labels, sh.seed+1)
		}
		sh.setGraph(g)
		fmt.Fprintf(sh.out, "generated %d nodes, %d edges, %d labels\n", g.NumNodes(), g.NumEdges(), labels)
	case `\alg`:
		if len(fields) != 2 {
			fmt.Fprintln(sh.out, "usage: \\alg <name|auto>")
			break
		}
		if fields[1] == "auto" {
			sh.alg = ""
		} else {
			sh.alg = core.Algorithm(strings.ToUpper(fields[1]))
			valid := false
			for _, a := range core.Algorithms {
				if a == sh.alg {
					valid = true
					break
				}
			}
			if !valid {
				fmt.Fprintf(sh.out, "error: unknown algorithm %q\n", fields[1])
				sh.alg = ""
				break
			}
		}
		sh.engine.Alg = sh.alg
		fmt.Fprintf(sh.out, "algorithm: %s\n", orAuto(string(sh.alg)))
	case `\workers`:
		if len(fields) != 2 {
			fmt.Fprintf(sh.out, "workers: %d (usage: \\workers <n|auto>)\n", sh.workers)
			break
		}
		if fields[1] == "auto" {
			sh.workers = core.DefaultWorkers()
		} else {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				fmt.Fprintln(sh.out, "error: workers must be a positive integer or auto")
				break
			}
			sh.workers = n
		}
		sh.engine.Opt.Workers = sh.workers
		fmt.Fprintf(sh.out, "workers: %d\n", sh.workers)
	case `\dot`:
		if len(fields) != 4 {
			fmt.Fprintln(sh.out, "usage: \\dot <node> <k> <file.dot>")
			break
		}
		g := sh.graphOrComplain()
		if g == nil {
			break
		}
		node, err1 := strconv.Atoi(fields[1])
		k, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || node < 0 || node >= g.NumNodes() || k < 0 {
			fmt.Fprintln(sh.out, "error: invalid node or radius")
			break
		}
		sg := g.EgoSubgraph(graph.NodeID(node), k)
		f, err := os.Create(fields[3])
		if err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
			break
		}
		ego := sg.ToLocal[graph.NodeID(node)]
		sg.G.SetNodeAttr(ego, "highlight", "lightblue")
		err = sg.G.WriteDOT(f, fmt.Sprintf("S(%d,%d)", node, k))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
			break
		}
		fmt.Fprintf(sh.out, "wrote %s (%d nodes, %d edges)\n", fields[3], sg.G.NumNodes(), sg.G.NumEdges())
	case `\stats`:
		g := sh.graphOrComplain()
		if g == nil {
			break
		}
		ds := stats.Degrees(g)
		_, comps := stats.Components(g)
		fmt.Fprintf(sh.out, "nodes %d, edges %d, directed %v\n", g.NumNodes(), g.NumEdges(), g.Directed())
		fmt.Fprintf(sh.out, "degree min/mean/median/max: %d/%.1f/%.0f/%d\n", ds.Min, ds.Mean, ds.Median, ds.Max)
		fmt.Fprintf(sh.out, "components: %d (largest %d)\n", len(comps), largest(comps))
		fmt.Fprintf(sh.out, "clustering: %.4f, diameter >= %d\n",
			stats.GlobalClustering(g), stats.EstimateDiameter(g, 4))
	case `\patterns`:
		names := make([]string, 0)
		for name := range sh.engine.Patterns() {
			names = append(names, name)
		}
		if len(names) == 0 {
			fmt.Fprintln(sh.out, "(none)")
			break
		}
		sortStringsInPlace(names)
		for _, n := range names {
			fmt.Fprintln(sh.out, sh.engine.Patterns()[n].String())
		}
	default:
		fmt.Fprintf(sh.out, "unknown command %s (try \\help)\n", fields[0])
	}
	return true
}

func orAuto(s string) string {
	if s == "" {
		return "auto"
	}
	return s
}

func largest(sizes []int) int {
	if len(sizes) == 0 {
		return 0
	}
	return sizes[0]
}

func sortStringsInPlace(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
