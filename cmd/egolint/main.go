// Command egolint is the multichecker driver for this repository's
// custom invariant analyzers (internal/lint): faultfs, detrange,
// ctxflow, errwrapcheck, and snapguard. CI builds it from the tree and
// gates every PR on a clean run over ./... — see doc/INVARIANTS.md for
// the catalogue of enforced invariants and the suppression directives.
//
// Usage:
//
//	egolint [-run name[,name...]] [-list] [packages...]
//
// Packages default to ./... relative to the current directory, which
// must lie inside a Go module. Exit status is 1 if any finding survives
// suppression, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"egocensus/internal/lint"
	"egocensus/internal/lint/analysis"
	"egocensus/internal/lint/load"
)

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: egolint [-run name[,name...]] [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "egolint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "egolint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := load.Packages(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egolint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egolint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s (egolint:%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "egolint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
