// Command chaos is the crash-recovery soak harness: it loops
// write → inject-fault → kill → reopen over the dynamic store, cutting
// the write path at randomized points with the fault-injection
// filesystem, and asserts the recovery invariants after every crash:
//
//   - The recovered epoch is lastAcked or lastAcked+1 — a batch whose log
//     record reached disk before the crash may be replayed even though
//     the writer never acknowledged it; anything else is a bug.
//   - The recovered graph is structurally identical to a reference graph
//     maintained outside the store (the acknowledged batches, plus the
//     in-flight one in the +1 case).
//   - A triangle census over the recovered store equals the census over
//     the reference graph — recovery is checked at the query level, not
//     just byte level.
//   - The reopened store accepts and persists new batches.
//
// Interleaved scenarios crash mid-compaction (stale-log recovery) and
// exhaust WAL retries to drive the writer into read-only degraded mode
// while the HTTP layer keeps serving queries and reports "degraded" on
// /healthz.
//
// Usage:
//
//	chaos [-iters 25] [-seed 0]
//
// Seed 0 derives one from the clock. The seed is printed at startup and
// again on failure; rerunning with -seed reproduces the run exactly.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"egocensus/internal/core"
	"egocensus/internal/fault"
	"egocensus/internal/graph"
	"egocensus/internal/serve"
	"egocensus/internal/storage"
)

const censusQuery = `
PATTERN tri { ?A-?B; ?B-?C; ?C-?A; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes
`

func main() {
	iters := flag.Int("iters", 25, "soak iterations")
	seed := flag.Int64("seed", 0, "master seed (0: derive from the clock)")
	shards := flag.Int("shards", 1, "shard count for the stores under test (1 = the historical single-log layout)")
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	fmt.Printf("chaos: %d iterations, seed %d, %d shards (rerun with -seed %d to reproduce)\n", *iters, *seed, *shards, *seed)

	for i := 0; i < *iters; i++ {
		rng := rand.New(rand.NewSource(*seed + int64(i)*7919))
		var err error
		var kind string
		switch {
		case i%5 == 3:
			kind = "compaction-crash"
			err = iterCompactionCrash(rng, *shards)
		case i%5 == 4 && *shards > 1 && i%2 == 0:
			kind = "shard-compaction-kill"
			err = iterShardCompactionKill(rng, *shards)
		case i%5 == 4:
			kind = "degraded-serving"
			err = iterDegradedServing(rng, *shards)
		default:
			kind = "append-crash"
			err = iterAppendCrash(rng, *shards)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: FAIL iteration %d (%s, seed %d): %v\n", i, kind, *seed, err)
			os.Exit(1)
		}
		fmt.Printf("chaos: iteration %d (%s) ok\n", i, kind)
	}
	fmt.Printf("chaos: PASS (%d iterations, seed %d)\n", *iters, *seed)
}

// seedOps builds the deterministic initial graph. Called twice per
// iteration (store + reference), so it must be a pure function of rng
// state — hence a fresh rand seeded identically.
func seedGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(false)
	n := 6 + rng.Intn(6)
	g.AddNodes(n)
	for i := 0; i < 2*n; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b {
			g.AddEdge(a, b)
		}
	}
	for i := 0; i < n; i += 2 {
		g.SetLabel(graph.NodeID(i), "even")
	}
	return g
}

// randBatch generates one mutation batch against a graph currently
// holding nodes node IDs. It returns the ops and the new node count.
func randBatch(rng *rand.Rand, nodes int) ([]graph.Op, int) {
	count := 1 + rng.Intn(5)
	ops := make([]graph.Op, 0, count)
	for i := 0; i < count; i++ {
		switch rng.Intn(4) {
		case 0:
			ops = append(ops, graph.Op{Kind: graph.OpAddNode})
			nodes++
		case 1:
			a, b := rng.Intn(nodes), rng.Intn(nodes)
			if a == b {
				b = (b + 1) % nodes
			}
			ops = append(ops, graph.Op{Kind: graph.OpAddEdge, A: int32(a), B: int32(b)})
		case 2:
			ops = append(ops, graph.Op{Kind: graph.OpSetLabel, A: int32(rng.Intn(nodes)), Val: fmt.Sprintf("l%d", rng.Intn(4))})
		default:
			ops = append(ops, graph.Op{Kind: graph.OpSetNodeAttr, A: int32(rng.Intn(nodes)), Key: "w", Val: fmt.Sprintf("%d", rng.Intn(100))})
		}
	}
	return ops, nodes
}

// stage mirrors a generated batch into the writer's staging API.
func stage(w *graph.ShardedWriter, ops []graph.Op) {
	for _, op := range ops {
		switch op.Kind {
		case graph.OpAddNode:
			w.AddNode()
		case graph.OpAddEdge:
			w.AddEdge(graph.NodeID(op.A), graph.NodeID(op.B))
		case graph.OpSetLabel:
			w.SetLabel(graph.NodeID(op.A), op.Val)
		case graph.OpSetNodeAttr:
			w.SetNodeAttr(graph.NodeID(op.A), op.Key, op.Val)
		}
	}
}

// applyRef applies a batch to the out-of-store reference graph.
func applyRef(g *graph.Graph, ops []graph.Op) error {
	for _, op := range ops {
		if err := graph.ApplyOp(g, op); err != nil {
			return fmt.Errorf("reference apply: %w", err)
		}
	}
	return nil
}

// fingerprint canonicalizes a graph's observable state.
func fingerprint(g *graph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		fmt.Fprintf(&b, "e%d:%d-%d\n", e, ed.From, ed.To)
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		fmt.Fprintf(&b, "v%d:%s:%v\n", n, g.LabelString(id), g.NodeAttrs(id))
	}
	return b.String()
}

// census runs the triangle census and canonicalizes the result table.
func census(g *graph.Graph) (string, error) {
	e := core.NewEngine(g)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tables, err := e.ExecuteContext(ctx, censusQuery)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, t := range tables {
		j := core.NewTableJSON(t)
		for _, row := range j.Rows {
			fmt.Fprintf(&b, "%v\n", row)
		}
	}
	return b.String(), nil
}

// randomCrashRule scripts one fault on the mutation log's append path.
// All variants end with the filesystem halted — the simulated kill.
func randomCrashRule(rng *rand.Rand) fault.Rule {
	// Syncs/writes on the log: #1 is the header; appends start at #2.
	occ := 2 + rng.Intn(6)
	switch rng.Intn(3) {
	case 0:
		// fsync fails and the process dies: the record's bytes may be
		// durable anyway (the epoch+1 recovery case).
		return fault.Rule{Op: fault.OpSync, Path: ".log", From: occ, Count: 1, Err: syscall.EIO, Halt: true}
	case 1:
		// Torn write then death: a genuinely partial frame on disk.
		return fault.Rule{Op: fault.OpWrite, Path: ".log", From: occ, Count: 1, Err: syscall.EIO, KeepBytes: rng.Intn(40), Halt: true}
	default:
		// Write completes, process dies before the fsync call returns.
		return fault.Rule{Op: fault.OpWrite, Path: ".log", From: occ, Count: 1, Halt: true}
	}
}

// iterAppendCrash is the core soak loop body: publish batches through an
// injected filesystem until a scripted fault kills the "process", then
// reopen and check every recovery invariant.
func iterAppendCrash(rng *rand.Rand, shards int) error {
	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "g.egoc")

	gseed := rng.Int63()
	inj := fault.NewInjector(fault.OS{}, rng.Int63())
	ds, err := storage.CreateDynamicShardedFS(inj, base, seedGraph(gseed), shards)
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	ds.SetCompactAtBytes(0) // compaction has its own scenario
	ref := seedGraph(gseed)
	nodes := ref.NumNodes()

	// A few clean batches first, then arm the fault and keep writing
	// until it kills us (or we run out of batches — a harmless no-fault
	// iteration when the rule's occurrence is never reached).
	w := ds.Writer()
	w.WALRetry = graph.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	lastAcked := uint64(0)
	var pending []graph.Op
	clean := rng.Intn(3)
	for b := 0; b < 10; b++ {
		if b == clean {
			inj.SetRules(randomCrashRule(rng))
		}
		var ops []graph.Op
		ops, nodes = randBatch(rng, nodes)
		stage(w, ops)
		snap, err := w.Publish()
		if err != nil {
			pending = ops
			break
		}
		lastAcked = snap.Epoch()
		if err := applyRef(ref, ops); err != nil {
			return err
		}
	}
	inj.Halt() // the kill: every descriptor of the dead process goes dark
	ds.Close()

	// Reopen through a healthy filesystem, as the next process would.
	ds2, err := storage.OpenDynamic(base)
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	defer ds2.Close()
	ds2.SetCompactAtBytes(0)
	got := ds2.Snapshot().Epoch()
	var want *graph.Graph
	switch got {
	case lastAcked:
		want = ref
	case lastAcked + 1:
		// The in-flight record was durable despite the failed ack.
		if pending == nil {
			return fmt.Errorf("recovered epoch %d is lastAcked+1 but no batch was in flight", got)
		}
		if err := applyRef(ref, pending); err != nil {
			return err
		}
		want = ref
	default:
		return fmt.Errorf("recovered epoch %d, want %d or %d", got, lastAcked, lastAcked+1)
	}
	if fp, wfp := fingerprint(ds2.Snapshot().Graph()), fingerprint(want); fp != wfp {
		return fmt.Errorf("recovered graph diverges from reference:\n--- recovered\n%s--- reference\n%s", fp, wfp)
	}
	gotCensus, err := census(ds2.Snapshot().Graph())
	if err != nil {
		return fmt.Errorf("census over recovered graph: %w", err)
	}
	wantCensus, err := census(want)
	if err != nil {
		return fmt.Errorf("census over reference graph: %w", err)
	}
	if gotCensus != wantCensus {
		return fmt.Errorf("census diverges after recovery:\n--- recovered\n%s--- reference\n%s", gotCensus, wantCensus)
	}

	// The recovered log must accept appends at the resumed epoch.
	w2 := ds2.Writer()
	ops, _ := randBatch(rng, want.NumNodes())
	stage(w2, ops)
	snap, err := w2.Publish()
	if err != nil {
		return fmt.Errorf("publish after recovery: %w", err)
	}
	if snap.Epoch() != got+1 {
		return fmt.Errorf("post-recovery epoch %d, want %d", snap.Epoch(), got+1)
	}
	return nil
}

// iterCompactionCrash kills the process mid-compaction — before the base
// rename, between rename and log swap (the stale-log window), or at the
// log swap — and checks the store recovers the published state.
func iterCompactionCrash(rng *rand.Rand, shards int) error {
	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "g.egoc")

	gseed := rng.Int63()
	inj := fault.NewInjector(fault.OS{}, rng.Int63())
	ds, err := storage.CreateDynamicShardedFS(inj, base, seedGraph(gseed), shards)
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	ds.SetCompactAtBytes(0)
	ref := seedGraph(gseed)
	nodes := ref.NumNodes()

	w := ds.Writer()
	lastAcked := uint64(0)
	for b := 0; b < 3+rng.Intn(4); b++ {
		var ops []graph.Op
		ops, nodes = randBatch(rng, nodes)
		stage(w, ops)
		snap, err := w.Publish()
		if err != nil {
			return fmt.Errorf("clean publish: %w", err)
		}
		lastAcked = snap.Epoch()
		if err := applyRef(ref, ops); err != nil {
			return err
		}
	}

	// Compact's filesystem schedule: temp-image writes/syncs, base
	// rename (#1), new-log create, log rename (#2). Crashing around
	// either rename exercises stale-log detection.
	switch rng.Intn(3) {
	case 0:
		inj.SetRules(fault.Rule{Op: fault.OpRename, From: 1, Count: 1, Halt: true})
	case 1:
		inj.SetRules(fault.Rule{Op: fault.OpRename, From: 2, Count: 1, Err: syscall.EIO, Halt: true})
	default:
		inj.SetRules(fault.Rule{Op: fault.OpSync, Path: ".egoc-save-", From: 1, Count: 1, Err: syscall.EIO, Halt: true})
	}
	_ = ds.Compact() // expected to fail — the "process" dies somewhere inside
	inj.Halt()
	ds.Close()

	ds2, err := storage.OpenDynamic(base)
	if err != nil {
		return fmt.Errorf("reopen after compaction crash: %w", err)
	}
	defer ds2.Close()
	ds2.SetCompactAtBytes(0)
	if got := ds2.Snapshot().Epoch(); got != lastAcked {
		return fmt.Errorf("recovered epoch %d after compaction crash, want %d (no batch was in flight)", got, lastAcked)
	}
	if fp, wfp := fingerprint(ds2.Snapshot().Graph()), fingerprint(ref); fp != wfp {
		return fmt.Errorf("compaction crash lost state:\n--- recovered\n%s--- reference\n%s", fp, wfp)
	}
	// The store must remain fully writable, including a clean compaction.
	w2 := ds2.Writer()
	ops, _ := randBatch(rng, ref.NumNodes())
	stage(w2, ops)
	if _, err := w2.Publish(); err != nil {
		return fmt.Errorf("publish after compaction crash: %w", err)
	}
	if err := ds2.Compact(); err != nil {
		return fmt.Errorf("compaction after recovery: %w", err)
	}
	return nil
}

// iterDegradedServing fails every WAL fsync so the writer exhausts its
// retries and degrades, then checks the serving contract: queries keep
// answering from the pinned snapshot (reference-equal), /healthz reports
// degraded without failing the probe, and clearing the fault plus
// ClearDegraded resumes publishing.
func iterDegradedServing(rng *rand.Rand, shards int) error {
	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "g.egoc")

	gseed := rng.Int63()
	inj := fault.NewInjector(fault.OS{}, rng.Int63())
	ds, err := storage.CreateDynamicShardedFS(inj, base, seedGraph(gseed), shards)
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	defer ds.Close()
	ds.SetCompactAtBytes(0)
	ref := seedGraph(gseed)
	nodes := ref.NumNodes()

	w := ds.Writer()
	w.WALRetry = graph.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	var ops []graph.Op
	ops, nodes = randBatch(rng, nodes)
	stage(w, ops)
	if _, err := w.Publish(); err != nil {
		return fmt.Errorf("clean publish: %w", err)
	}
	if err := applyRef(ref, ops); err != nil {
		return err
	}

	srv := serve.New(core.NewEngineLiveSharded(w), serve.Config{WriteHealth: w.Degraded})

	// Every further fsync on the log hits ENOSPC: retries exhaust and the
	// writer degrades.
	inj.SetRules(fault.Rule{Op: fault.OpSync, Path: ".log", Err: syscall.ENOSPC})
	ops, nodes = randBatch(rng, nodes)
	stage(w, ops)
	if _, err := w.Publish(); err == nil {
		return fmt.Errorf("publish succeeded with every fsync failing")
	}
	if w.Degraded() == nil {
		return fmt.Errorf("writer not degraded after exhausted retries")
	}

	// Probe: 200 + "degraded", never 503 — reads still serve.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "degraded") {
		return fmt.Errorf("healthz while degraded: %d %q", rec.Code, rec.Body.String())
	}

	// Queries against the degraded server equal the reference census.
	body := fmt.Sprintf(`{"query": %q}`, censusQuery)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		return fmt.Errorf("query while degraded: %d %s", rec.Code, rec.Body.String())
	}
	wantCensus, err := census(ref)
	if err != nil {
		return err
	}
	gotCensus, err := census(ds.Snapshot().Graph())
	if err != nil {
		return fmt.Errorf("census while degraded: %w", err)
	}
	if gotCensus != wantCensus {
		return fmt.Errorf("degraded-mode census diverges:\n--- served\n%s--- reference\n%s", gotCensus, wantCensus)
	}

	// Operator clears the fault: the retained batch publishes and the
	// probe flips back to ok.
	inj.ClearRules()
	if !w.ClearDegraded() {
		return fmt.Errorf("ClearDegraded found a healthy writer")
	}
	snap, err := w.Publish()
	if err != nil {
		return fmt.Errorf("publish after recovery: %w", err)
	}
	if err := applyRef(ref, ops); err != nil {
		return err
	}
	if snap.Epoch() != 2 {
		return fmt.Errorf("post-recovery epoch %d, want 2", snap.Epoch())
	}
	if fp, wfp := fingerprint(snap.Graph()), fingerprint(ref); fp != wfp {
		return fmt.Errorf("post-recovery graph diverges:\n--- store\n%s--- reference\n%s", fp, wfp)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		return fmt.Errorf("healthz after recovery: %d %q", rec.Code, rec.Body.String())
	}
	return nil
}

// iterShardCompactionKill targets the sharded compaction swap: a P-shard
// compaction renames the base image and then each of the P log segments
// in turn, and those P+1 renames cannot be atomic together. The process
// is killed at a random segment rename, leaving a mix of swapped (new,
// empty) and stale (bound to the previous image) segments. Reopening
// must resolve the mix per segment: the shards whose swap never happened
// lose nothing — their batches are already folded into the renamed image
// — and the recovered epoch and graph equal the last acknowledged state.
func iterShardCompactionKill(rng *rand.Rand, shards int) error {
	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	base := filepath.Join(dir, "g.egoc")

	gseed := rng.Int63()
	inj := fault.NewInjector(fault.OS{}, rng.Int63())
	ds, err := storage.CreateDynamicShardedFS(inj, base, seedGraph(gseed), shards)
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	ds.SetCompactAtBytes(0)
	ref := seedGraph(gseed)
	nodes := ref.NumNodes()

	w := ds.Writer()
	lastAcked := uint64(0)
	for b := 0; b < 3+rng.Intn(4); b++ {
		var ops []graph.Op
		ops, nodes = randBatch(rng, nodes)
		stage(w, ops)
		snap, err := w.Publish()
		if err != nil {
			return fmt.Errorf("clean publish: %w", err)
		}
		lastAcked = snap.Epoch()
		if err := applyRef(ref, ops); err != nil {
			return err
		}
	}

	// Rename #1 is the base image; #2 … #shards+1 swap the segments.
	// Killing at a random segment swap leaves segments 0..k-2 new and
	// k-1..P-1 stale.
	k := 2 + rng.Intn(shards)
	inj.SetRules(fault.Rule{Op: fault.OpRename, From: k, Count: 1, Err: syscall.EIO, Halt: true})
	_ = ds.Compact() // the "process" dies mid-swap
	inj.Halt()
	ds.Close()

	ds2, err := storage.OpenDynamic(base)
	if err != nil {
		return fmt.Errorf("reopen after shard-compaction kill: %w", err)
	}
	defer ds2.Close()
	ds2.SetCompactAtBytes(0)
	if got := ds2.Snapshot().Epoch(); got != lastAcked {
		return fmt.Errorf("recovered epoch %d after shard-compaction kill at rename %d, want %d", got, k, lastAcked)
	}
	if ds2.Shards() != shards {
		return fmt.Errorf("recovered store has %d shards, want %d", ds2.Shards(), shards)
	}
	if fp, wfp := fingerprint(ds2.Snapshot().Graph()), fingerprint(ref); fp != wfp {
		return fmt.Errorf("shard-compaction kill lost state:\n--- recovered\n%s--- reference\n%s", fp, wfp)
	}
	gotCensus, err := census(ds2.Snapshot().Graph())
	if err != nil {
		return fmt.Errorf("census over recovered graph: %w", err)
	}
	wantCensus, err := census(ref)
	if err != nil {
		return err
	}
	if gotCensus != wantCensus {
		return fmt.Errorf("census diverges after shard-compaction kill:\n--- recovered\n%s--- reference\n%s", gotCensus, wantCensus)
	}

	// Still fully writable across every shard, and a clean compaction
	// completes the interrupted swap.
	w2 := ds2.Writer()
	var ops []graph.Op
	ops, nodes = randBatch(rng, ref.NumNodes())
	stage(w2, ops)
	if _, err := w2.Publish(); err != nil {
		return fmt.Errorf("publish after shard-compaction kill: %w", err)
	}
	if err := ds2.Compact(); err != nil {
		return fmt.Errorf("compaction after recovery: %w", err)
	}
	return nil
}
