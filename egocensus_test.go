package egocensus

import (
	"path/filepath"
	"testing"
)

// The facade test exercises the whole public surface end to end: generate,
// persist, reload, declare patterns, query, and cross-check algorithms.
func TestFacadeEndToEnd(t *testing.T) {
	g := PreferentialAttachment(300, 4, 1)
	AssignLabels(g, 3, 2)

	path := filepath.Join(t.TempDir(), "g.egoc")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip lost data")
	}

	e := NewEngine(g2)
	tables, err := e.Execute(`
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].TypedRows) != g2.NumNodes() {
		t.Fatal("unexpected result shape")
	}

	// Direct API agrees with the engine.
	spec := Spec{Pattern: CliquePattern("tri", 3, nil), K: 1}
	for _, alg := range []Algorithm{NDBas, NDDiff, NDPvot, PTBas, PTRnd, PTOpt} {
		res, err := Count(g2, spec, alg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for _, row := range tables[0].TypedRows {
			if res.Counts[row.Focal[0]] != row.Count {
				t.Fatalf("%s disagrees with engine at node %d", alg, row.Focal[0])
			}
		}
	}
}

func TestFacadeMatching(t *testing.T) {
	g := ErdosRenyi(40, 90, 3)
	p := CliquePattern("tri", 3, nil)
	cn := FindMatches(CN{}, g, p)
	gql := FindMatches(GQL{}, g, p)
	if len(cn) != len(gql) {
		t.Fatalf("CN %d != GQL %d", len(cn), len(gql))
	}
}

func TestFacadePairwise(t *testing.T) {
	g := ErdosRenyi(15, 30, 5)
	spec := PairSpec{
		Spec: Spec{Pattern: SingleNodePattern("n", ""), K: 1},
		Mode: Intersection,
	}
	res, err := CountPairs(g, spec, PTOpt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for pr, c := range res.Counts {
		if want := int64(g.EgoIntersection(pr.A, pr.B, 1).G.NumNodes()); c != want {
			t.Fatalf("pair %v: %d want %d", pr, c, want)
		}
	}
}

func TestFacadeCenters(t *testing.T) {
	g := PreferentialAttachment(100, 3, 7)
	idx := BuildCenters(g, 4, CentersByDegree, 0)
	if idx.Len() != 4 {
		t.Fatalf("centers = %d", idx.Len())
	}
	if _, ok := idx.Bound(0, 1); !ok {
		t.Fatal("bound should be available on a connected graph")
	}
}

func TestFacadeLinkPred(t *testing.T) {
	cfg := DefaultCoauthConfig()
	cfg.Authors, cfg.PapersPerYear = 300, 50
	corpus := GenerateCoauthorship(cfg)
	train, authorNode := corpus.Graph(2001, 2005)
	positives := map[Pair]bool{}
	for pr := range corpus.NewPairs(2006, 2010) {
		na, oka := authorNode[pr[0]]
		nb, okb := authorNode[pr[1]]
		if oka && okb {
			positives[MakePair(na, nb)] = true
		}
	}
	eval := &LinkPredEval{Train: train, Positives: positives}
	if ms := LinkPredMeasures(); len(ms) != 9 {
		t.Fatalf("measures = %d", len(ms))
	}
	j := JaccardScores(train)
	if len(j) == 0 {
		t.Fatal("no jaccard scores")
	}
	if p := eval.PrecisionAtK(j, 50); p < 0 || p > 1 {
		t.Fatalf("precision out of range: %v", p)
	}
	r := RandomScores(train, 100, 1)
	if len(r) != 100 {
		t.Fatal("random scores wrong size")
	}
}

// TestFacadeVersionedCore exercises the MVCC surface: writer, snapshots,
// the live engine, the maintainer, and the durable dynamic store.
func TestFacadeVersionedCore(t *testing.T) {
	g := PreferentialAttachment(60, 3, 11)
	AssignLabels(g, 2, 12)
	nodes0 := g.NumNodes()
	w := NewWriter(g)
	s0 := w.Snapshot()
	spec := Spec{Pattern: CliquePattern("tri", 3, nil), K: 1}

	n := w.AddNode()
	w.SetLabel(n, "l0")
	w.AddEdge(n, 0)
	s1, err := w.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch() != s0.Epoch()+1 {
		t.Fatalf("epoch %d after publish from %d", s1.Epoch(), s0.Epoch())
	}

	// Pinned censuses see their own version.
	r0, err := CountSnapshot(s0, spec, NDBas, Options{})
	if err != nil || len(r0.Counts) != nodes0 {
		t.Fatalf("epoch-%d census: %d nodes, err %v", s0.Epoch(), len(r0.Counts), err)
	}
	r1, err := CountSnapshot(s1, spec, PTOpt, Options{})
	if err != nil || len(r1.Counts) != nodes0+1 {
		t.Fatalf("epoch-%d census: %d nodes, err %v", s1.Epoch(), len(r1.Counts), err)
	}

	// The live engine stamps the pinned epoch on each result table.
	e := NewLiveEngine(w)
	tables, err := e.Execute(`
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].Epoch != s1.Epoch() || len(tables[0].Rows) != nodes0+1 {
		t.Fatalf("live engine: epoch %d rows %d", tables[0].Epoch, len(tables[0].Rows))
	}

	// The maintainer follows published batches without recomputation.
	mt := NewMaintainer(s1)
	if err := mt.Register("tri", spec, Options{}); err != nil {
		t.Fatal(err)
	}
	stop := mt.Attach(w)
	defer stop()
	w.AddEdge(0, 1)
	w.AddEdge(1, 2)
	s2, err := w.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.CatchUp(s2.Epoch()); err != nil {
		t.Fatal(err)
	}
	counts, epoch, err := mt.Counts("tri")
	if err != nil || epoch < s2.Epoch() {
		t.Fatalf("maintained counts at %d, err %v", epoch, err)
	}
	want, err := CountSnapshot(s2, spec, PTBas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for node := range counts {
		if counts[node] != want.Counts[node] {
			t.Fatalf("node %d: maintained %d, from-scratch %d", node, counts[node], want.Counts[node])
		}
	}

	// Durable dynamic store: published batches survive reopen.
	base := filepath.Join(t.TempDir(), "dyn.egoc")
	ds, err := CreateDynamic(base, ErdosRenyi(20, 30, 13))
	if err != nil {
		t.Fatal(err)
	}
	dw := ds.Writer()
	a := dw.AddNode()
	dw.AddEdge(a, 0)
	if _, err := dw.Publish(); err != nil {
		t.Fatal(err)
	}
	wantEpoch, wantNodes := ds.Snapshot().Epoch(), ds.Snapshot().NumNodes()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds2, err := OpenDynamic(base)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if ds2.Snapshot().Epoch() != wantEpoch || ds2.Snapshot().NumNodes() != wantNodes {
		t.Fatalf("reopen at epoch %d with %d nodes, want %d/%d",
			ds2.Snapshot().Epoch(), ds2.Snapshot().NumNodes(), wantEpoch, wantNodes)
	}

	if FreezeGraph(NewGraph(false)).Epoch() != 0 {
		t.Fatal("fresh freeze should be epoch 0")
	}
}

func TestFacadeShardedStore(t *testing.T) {
	if p := NewPartitioner(4); !p.Enabled() || p.Shards() != 4 {
		t.Fatalf("partitioner: enabled=%v shards=%d", p.Enabled(), p.Shards())
	}

	// Live sharded writer + engine: queries answer while lanes ingest.
	sw := NewShardedWriter(ErdosRenyi(20, 30, 13), 4)
	sw.AddEdge(sw.AddNode(), 0)
	if _, err := sw.Publish(); err != nil {
		t.Fatal(err)
	}
	tables, err := NewLiveShardedEngine(sw).Execute(
		`PATTERN tri { ?A-?B; ?B-?C; ?A-?C; } SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes LIMIT 3`)
	if err != nil || tables[0].Epoch != sw.Snapshot().Epoch() {
		t.Fatalf("sharded live query: %v (epoch %d vs %d)", err, tables[0].Epoch, sw.Snapshot().Epoch())
	}

	// Durable sharded store: published batches survive reopen, and the
	// recorded shard count is rediscovered.
	base := filepath.Join(t.TempDir(), "dyn.egoc")
	ds, err := CreateDynamicSharded(base, ErdosRenyi(20, 30, 13), 4)
	if err != nil {
		t.Fatal(err)
	}
	dw := ds.Writer()
	dw.AddEdge(dw.AddNode(), 0)
	if _, err := dw.Publish(); err != nil {
		t.Fatal(err)
	}
	wantEpoch, wantNodes := ds.Snapshot().Epoch(), ds.Snapshot().NumNodes()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds2, err := OpenDynamic(base)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if ds2.Shards() != 4 || ds2.Snapshot().Epoch() != wantEpoch || ds2.Snapshot().NumNodes() != wantNodes {
		t.Fatalf("reopen: %d shards, epoch %d, %d nodes (want 4/%d/%d)",
			ds2.Shards(), ds2.Snapshot().Epoch(), ds2.Snapshot().NumNodes(), wantEpoch, wantNodes)
	}
}

func TestFacadeScriptParsing(t *testing.T) {
	s, err := ParseScript(`PATTERN n {?A;} SELECT ID, COUNTP(n, SUBGRAPH(ID, 1)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Queries()) != 1 {
		t.Fatal("query missing")
	}
	if _, err := ParseScript(`garbage`); err == nil {
		t.Fatal("bad script should error")
	}
}

func TestFacadeFormatTable(t *testing.T) {
	g := ErdosRenyi(5, 6, 9)
	e := NewEngine(g)
	tables, err := e.Execute(`PATTERN n {?A;} SELECT ID, COUNTP(n, SUBGRAPH(ID, 0)) FROM nodes`)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTable(tables[0]) == "" {
		t.Fatal("empty render")
	}
}

func TestFacadeStatsAndMeasures(t *testing.T) {
	g := PreferentialAttachment(200, 3, 5)
	if GlobalClustering(g) <= 0 {
		t.Fatal("clustering should be positive on a BA graph")
	}
	if len(DegreeHistogram(g)) == 0 || DegreeSummary(g).Max < 3 {
		t.Fatal("degree stats wrong")
	}
	_, sizes := Components(g)
	if len(sizes) == 0 || sizes[0] != g.NumNodes() {
		t.Fatal("BA graph should be connected")
	}
	if EstimateDiameter(g, 3) < 2 {
		t.Fatal("diameter estimate too small")
	}
	if len(CoreNumbers(g)) != g.NumNodes() {
		t.Fatal("core numbers wrong length")
	}
	deg, err := DegreeCensus(g, NDPvot, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < g.NumNodes(); n++ {
		if deg[n] != int64(len(g.Neighbors(NodeID(n)))) {
			t.Fatalf("degree census wrong at %d", n)
		}
	}
	cc, err := ClusteringCoefficientCensus(g, 1, PTOpt, Options{})
	if err != nil || len(cc) != g.NumNodes() {
		t.Fatalf("clustering census: %v", err)
	}
	if _, err := JaccardCensus(g, 0, 1, PTOpt, Options{}); err != nil {
		t.Fatal(err)
	}
	dg := NewGraph(true)
	a, b, c := dg.AddNode(), dg.AddNode(), dg.AddNode()
	for _, n := range []NodeID{a, b, c} {
		dg.SetLabel(n, "org1")
	}
	dg.AddEdge(a, b)
	dg.AddEdge(b, c)
	scores, err := BrokerageScoresCensus(dg, Coordinator, NDPvot, Options{})
	if err != nil || scores[b] != 1 {
		t.Fatalf("brokerage census: %v %v", scores, err)
	}
}
