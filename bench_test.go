// Benchmarks mirroring the paper's evaluation, one family per figure.
// Each sub-benchmark exercises exactly the code path of the corresponding
// experiment at a benchmark-friendly size; cmd/experiments runs the full
// parameter sweeps (up to the paper's 1M-node scale with -scale paper).
package egocensus

import (
	"fmt"
	"math/rand"
	"testing"

	"egocensus/internal/centers"
	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/linkpred"
	"egocensus/internal/match"
	"egocensus/internal/pattern"
)

const benchEdgeFactor = 5

func benchLabeledGraph(n int) *graph.Graph {
	g := gen.PreferentialAttachment(n, benchEdgeFactor, 1)
	gen.AssignLabels(g, 4, 2)
	g.BuildProfiles()
	return g
}

func benchUnlabeledGraph(n int) *graph.Graph {
	g := gen.PreferentialAttachment(n, benchEdgeFactor, 1)
	g.BuildProfiles()
	return g
}

func benchClq3() *pattern.Pattern {
	return pattern.Clique("clq3", 3, []string{"l0", "l1", "l2"})
}

// benchPTOptions prebuilds the paper's 12 high-degree centers (an offline
// index per Section IV-B4), so benchmarks time query evaluation only.
func benchPTOptions(g *graph.Graph) core.Options {
	idx := centers.Build(g, 12, centers.ByDegree, 1)
	return core.Options{Seed: 1, PMDCenters: idx, ClusterCenters: idx}
}

// BenchmarkFig4a — CN vs GQL matching, labeled clq3/clq4 (Fig 4(a): CN
// wins by 10–140x at paper scale).
func BenchmarkFig4a(b *testing.B) {
	g := benchLabeledGraph(4000)
	pats := map[string]*pattern.Pattern{
		"clq3": benchClq3(),
		"clq4": pattern.Clique("clq4", 4, []string{"l0", "l1", "l2", "l3"}),
	}
	for _, pname := range []string{"clq3", "clq4"} {
		for _, m := range []match.Matcher{match.CN{}, match.GQL{}} {
			b.Run(fmt.Sprintf("%s/%s", pname, m.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					match.FindMatches(m, g, pats[pname])
				}
			})
		}
	}
}

// BenchmarkFig4b — CN vs GQL across the Figure 3 pattern set (Fig 4(b):
// GQL's sqr run is the 480x blow-up).
func BenchmarkFig4b(b *testing.B) {
	g := benchLabeledGraph(4000)
	pats := []*pattern.Pattern{
		benchClq3(),
		pattern.Clique("clq4", 4, []string{"l0", "l1", "l2", "l3"}),
		pattern.Square("sqr", []string{"l0", "l1", "l0", "l1"}),
	}
	for _, p := range pats {
		p := p
		for _, m := range []match.Matcher{match.CN{}, match.GQL{}} {
			b.Run(fmt.Sprintf("%s/%s", p.Name, m.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					match.FindMatches(m, g, p)
				}
			})
		}
	}
	// chain4 and star4 have enormous match sets; benchmark CN only.
	for _, p := range []*pattern.Pattern{
		pattern.Chain("chain4", 4, []string{"l0", "l1", "l2", "l3"}),
		pattern.Star("star4", 4, []string{"l0", "l1", "l2", "l3"}),
	} {
		p := p
		b.Run(fmt.Sprintf("%s/CN", p.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				match.FindMatches(match.CN{}, g, p)
			}
		})
	}
}

func benchCensus(b *testing.B, g *graph.Graph, spec core.Spec, alg core.Algorithm, opt core.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := core.Count(g, spec, alg, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4c — unlabeled triangle census, k=2, all algorithms
// (Fig 4(c): ND-PVOT wins on non-selective patterns; ND-BAS is 218x
// slower than ND-PVOT at the paper's 20K-node point).
func BenchmarkFig4c(b *testing.B) {
	g := benchUnlabeledGraph(1000)
	spec := core.Spec{Pattern: pattern.Clique("clq3-unlb", 3, nil), K: 2}
	opt := benchPTOptions(g)
	for _, alg := range core.Algorithms {
		b.Run(string(alg), func(b *testing.B) {
			benchCensus(b, g, spec, alg, opt)
		})
	}
}

// BenchmarkFig4d — labeled triangle census, k=2 (Fig 4(d): pattern-driven
// algorithms win on selective patterns; best-first beats random order).
func BenchmarkFig4d(b *testing.B) {
	g := benchLabeledGraph(2000)
	spec := core.Spec{Pattern: benchClq3(), K: 2}
	opt := benchPTOptions(g)
	for _, alg := range []core.Algorithm{core.NDDiff, core.NDPvot, core.PTBas, core.PTRnd, core.PTOpt} {
		b.Run(string(alg), func(b *testing.B) {
			benchCensus(b, g, spec, alg, opt)
		})
	}
}

// BenchmarkFig4e — focal selectivity sweep (Fig 4(e): node-driven cost
// grows with R, pattern-driven cost is flat).
func BenchmarkFig4e(b *testing.B) {
	g := benchUnlabeledGraph(1000)
	p := pattern.Clique("clq3-unlb", 3, nil)
	opt := benchPTOptions(g)
	for _, r := range []float64{0.2, 1.0} {
		rng := rand.New(rand.NewSource(9))
		var focal []graph.NodeID
		for i := 0; i < g.NumNodes(); i++ {
			if rng.Float64() < r {
				focal = append(focal, graph.NodeID(i))
			}
		}
		spec := core.Spec{Pattern: p, K: 2, Focal: focal}
		for _, alg := range []core.Algorithm{core.NDPvot, core.PTOpt} {
			b.Run(fmt.Sprintf("R=%.0f%%/%s", r*100, alg), func(b *testing.B) {
				benchCensus(b, g, spec, alg, opt)
			})
		}
	}
}

// BenchmarkFig4f — PT-OPT with varying PMD center counts and strategies,
// clustering centers held fixed (Fig 4(f)).
func BenchmarkFig4f(b *testing.B) {
	g := benchLabeledGraph(2000)
	spec := core.Spec{Pattern: benchClq3(), K: 2}
	clusterIdx := centers.Build(g, 12, centers.ByDegree, 1)
	for _, strat := range []struct {
		name string
		s    centers.Strategy
	}{{"DEG-CNTR", centers.ByDegree}, {"RND-CNTR", centers.Random}} {
		for _, nc := range []int{0, 12, 24} {
			idx := centers.Build(g, nc, strat.s, 1)
			b.Run(fmt.Sprintf("%s/centers=%d", strat.name, nc), func(b *testing.B) {
				benchCensus(b, g, spec, core.PTOpt, core.Options{
					Seed: 1, PMDCenters: idx, ClusterCenters: clusterIdx,
				})
			})
		}
	}
}

// BenchmarkFig4g — PT-OPT clustering variants (Fig 4(g): OPT-CLUST beats
// RND-CLUST and NO-CLUST; too many or too few clusters hurt).
func BenchmarkFig4g(b *testing.B) {
	g := benchLabeledGraph(2000)
	spec := core.Spec{Pattern: benchClq3(), K: 2}
	base := benchPTOptions(g)
	noClust := base
	noClust.NoClustering = true
	b.Run("NO-CLUST", func(b *testing.B) {
		benchCensus(b, g, spec, core.PTOpt, noClust)
	})
	for _, k := range []int{10, 40} {
		rnd := base
		rnd.Clusters, rnd.RandomClustering = k, true
		b.Run(fmt.Sprintf("RND-CLUST/k=%d", k), func(b *testing.B) {
			benchCensus(b, g, spec, core.PTOpt, rnd)
		})
		kopt := base
		kopt.Clusters = k
		b.Run(fmt.Sprintf("OPT-CLUST/k=%d", k), func(b *testing.B) {
			benchCensus(b, g, spec, core.PTOpt, kopt)
		})
	}
}

// BenchmarkFig4h — the link-prediction pairwise censuses (Fig 4(h) and
// the Section V-B runtime comparison: PT-OPT 0.9x–3.4x vs PT-BAS).
func BenchmarkFig4h(b *testing.B) {
	cfg := gen.DefaultCoauthConfig()
	cfg.Authors, cfg.PapersPerYear = 400, 70
	corpus := gen.GenerateCoauthorship(cfg)
	train, _ := corpus.Graph(2001, 2005)
	train.BuildProfiles()
	trainOpt := benchPTOptions(train)
	for _, m := range []linkpred.Measure{
		{Name: "node@2", Structure: "node", R: 2},
		{Name: "triangle@3", Structure: "triangle", R: 3},
	} {
		for _, alg := range []core.Algorithm{core.PTBas, core.PTOpt} {
			b.Run(fmt.Sprintf("%s/%s", m.Name, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := m.Score(train, alg, trainOpt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	b.Run("jaccard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linkpred.Jaccard(train)
		}
	})
}

// BenchmarkMatchCN isolates the matcher on growing graphs (the raw series
// behind Fig 4(a)).
func BenchmarkMatchCN(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000, 8000} {
		g := benchLabeledGraph(n)
		p := benchClq3()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				match.FindMatches(match.CN{}, g, p)
			}
		})
	}
}

// BenchmarkEgoSubgraph isolates neighborhood extraction, the inner loop of
// the node-driven baseline.
func BenchmarkEgoSubgraph(b *testing.B) {
	g := benchUnlabeledGraph(5000)
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.EgoSubgraph(graph.NodeID(i%g.NumNodes()), k)
			}
		})
	}
}

// BenchmarkAblationShortcuts isolates the distance-shortcut
// initialization of Section IV-B2 (no figure in the paper; DESIGN.md
// ablation).
func BenchmarkAblationShortcuts(b *testing.B) {
	g := benchLabeledGraph(2000)
	spec := core.Spec{Pattern: benchClq3(), K: 2}
	with := benchPTOptions(g)
	without := with
	without.DisableShortcuts = true
	b.Run("with-shortcuts", func(b *testing.B) {
		benchCensus(b, g, spec, core.PTOpt, with)
	})
	b.Run("without-shortcuts", func(b *testing.B) {
		benchCensus(b, g, spec, core.PTOpt, without)
	})
}

// BenchmarkParallelWorkers measures the Options.Workers scaling of the
// counting phase. (Speedup requires multiple CPUs; on a single-core
// machine the worker counts should tie, which doubles as an overhead
// check.)
// BenchmarkCensusWorkers — the BENCH_4 census workload (labeled BA graph,
// unlabeled triangle, k=1, ND-BAS) across worker counts: the workload the
// bitset/zero-alloc acceptance numbers are recorded on. The BA degree
// distribution is heavily skewed, so this also exercises the cost-seeded
// work-stealing schedule.
func BenchmarkCensusWorkers(b *testing.B) {
	g := benchLabeledGraph(1000)
	spec := core.Spec{Pattern: pattern.Clique("clq3-unlb", 3, nil), K: 1}
	for _, w := range []int{1, 2, 4, 8} {
		opt := core.Options{Seed: 1, Workers: w}
		b.Run(fmt.Sprintf("ND-BAS/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			benchCensus(b, g, spec, core.NDBas, opt)
		})
	}
}

func BenchmarkParallelWorkers(b *testing.B) {
	g := benchLabeledGraph(4000)
	spec := core.Spec{Pattern: benchClq3(), K: 2}
	base := benchPTOptions(g)
	for _, w := range []int{1, 2, 4} {
		opt := base
		opt.Workers = w
		b.Run(fmt.Sprintf("PT-OPT/workers=%d", w), func(b *testing.B) {
			benchCensus(b, g, spec, core.PTOpt, opt)
		})
		b.Run(fmt.Sprintf("ND-PVOT/workers=%d", w), func(b *testing.B) {
			benchCensus(b, g, spec, core.NDPvot, opt)
		})
	}
}

// BenchmarkCountMany measures the shared-traversal batch evaluation
// against one census per pattern (an optimization beyond the paper).
func BenchmarkCountMany(b *testing.B) {
	g := benchUnlabeledGraph(2000)
	specs := []core.Spec{
		{Pattern: pattern.SingleNode("n", ""), K: 2},
		{Pattern: pattern.SingleEdge("e", nil), K: 2},
		{Pattern: pattern.Clique("clq3", 3, nil), K: 2},
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CountMany(g, specs, core.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("separate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, spec := range specs {
				if _, err := core.Count(g, spec, core.NDPvot, core.Options{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkIncremental measures incremental maintenance per inserted edge
// against recomputing the census from scratch. At k=1 the affected region
// is small and maintenance wins by orders of magnitude; at k=2 on
// small-world graphs most matches sit within 1 hop of any new edge, so
// maintenance degenerates toward recomputation (see DESIGN.md).
func BenchmarkIncremental(b *testing.B) {
	spec := core.Spec{Pattern: pattern.Clique("clq3-unlb", 3, nil), K: 1}
	b.Run("add-edge", func(b *testing.B) {
		g := benchUnlabeledGraph(2000)
		inc, err := core.NewIncremental(g, spec, core.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := graph.NodeID(rng.Intn(g.NumNodes()))
			c := graph.NodeID(rng.Intn(g.NumNodes()))
			if a == c {
				continue
			}
			inc.AddEdge(a, c)
		}
	})
	b.Run("recompute", func(b *testing.B) {
		g := benchUnlabeledGraph(2000)
		for i := 0; i < b.N; i++ {
			if _, err := core.Count(g, spec, core.NDPvot, core.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
