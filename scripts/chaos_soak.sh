#!/bin/sh
# Crash-recovery soak: loop write -> inject-fault -> kill -> reopen over
# the dynamic store via the fault-injection filesystem (cmd/chaos),
# asserting replay-or-truncate recovery, census equality against an
# uninjected reference, and degraded-mode serving. Run from the
# repository root.
#
#   CHAOS_ITERS  soak iterations (default 25; CI smoke uses a short budget)
#   CHAOS_SEED   master seed (default 0: derived from the clock; the
#                driver prints it so any failure is reproducible)
#   CHAOS_SHARDS shard count for the dynamic store (default 1; >1 adds
#                kill-during-one-shard's-compaction-swap scenarios and
#                asserts the other shards and the epoch sequence survive)
set -eu

iters=${CHAOS_ITERS:-25}
seed=${CHAOS_SEED:-0}
shards=${CHAOS_SHARDS:-1}

go run ./cmd/chaos -iters "$iters" -seed "$seed" -shards "$shards"
