#!/bin/sh
# End-to-end smoke test of the egoserve HTTP front end: generate a graph,
# start the server, exercise /healthz, /v1/query, and /v1/stats, verify
# that a repeated identical request is served from the result cache, and
# check that SIGTERM drains cleanly. Run from the repository root.
set -eu

addr=127.0.0.1:18947
tmp=$(mktemp -d)
pid=
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go run ./cmd/gengraph -nodes 300 -labels 3 -out "$tmp/g.egoc"
go build -o "$tmp/egoserve" ./cmd/egoserve
"$tmp/egoserve" -graph "$tmp/g.egoc" -addr "$addr" &
pid=$!

for _ in $(seq 1 50); do
	if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
		break
	fi
	sleep 0.2
done
curl -fsS "http://$addr/healthz" | grep -q ok

# First request defines the pattern and runs one SELECT (a single-SELECT
# script still runs prepared, and leaves tri in the engine catalog).
script='{"query":"PATTERN tri { ?A-?B; ?B-?C; ?C-?A; } SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes LIMIT 5"}'
curl -fsS -X POST -d "$script" "http://$addr/v1/query" | grep -q '"result_cached":false'

# A distinct query (different LIMIT, so a different fingerprint) must miss
# on its first execution and hit the result cache on the repeat.
q='{"query":"SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes LIMIT 7"}'
curl -fsS -X POST -d "$q" "http://$addr/v1/query" | grep -q '"result_cached":false'
curl -fsS -X POST -d "$q" "http://$addr/v1/query" | grep -q '"result_cached":true'

stats=$(curl -fsS "http://$addr/v1/stats")
echo "$stats" | grep -q '"prepared_statements":2'
# The flattened cache-eviction counters are always present and numeric
# (zero here: nothing has been evicted from either cache yet).
echo "$stats" | grep -q '"plan_evictions":0'
echo "$stats" | grep -q '"result_evictions":0'
echo "$stats" | grep -q '"evictions":0'

# A parse error must come back as HTTP 400, not tear the server down.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"query":"SELEC"}' "http://$addr/v1/query")
[ "$code" = 400 ]

kill -TERM "$pid"
wait "$pid"
pid=
echo "serve smoke: ok"
