// Targeted marketing (Fig 1(a) of the paper): in a social network with
// "couple" and "friend" relationships, find the couples with the most
// couple-pairs — couples who are friends with other couples — in their
// combined 2-hop network. A travel agency would seed its campaign with
// them.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"egocensus"
)

func main() {
	people := flag.Int("people", 600, "population size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	// Build a synthetic social network: a friendship backbone plus
	// disjoint couple edges tagged rel='couple'.
	g := egocensus.PreferentialAttachment(*people, 4, *seed)
	for e := 0; e < g.NumEdges(); e++ {
		g.SetEdgeAttr(egocensus.EdgeID(e), "rel", "friend")
	}
	inCouple := make([]bool, g.NumNodes())
	var couples [][2]egocensus.NodeID
	for len(couples) < *people/4 {
		a := egocensus.NodeID(rng.Intn(g.NumNodes()))
		// People mostly couple within their social circle: pick b among
		// a's friends when possible, so couples know other couples.
		var b egocensus.NodeID
		if nbrs := g.Neighbors(a); len(nbrs) > 0 && rng.Float64() < 0.8 {
			b = nbrs[rng.Intn(len(nbrs))]
		} else {
			b = egocensus.NodeID(rng.Intn(g.NumNodes()))
		}
		if a == b || inCouple[a] || inCouple[b] {
			continue
		}
		inCouple[a], inCouple[b] = true, true
		var e egocensus.EdgeID
		if ex := g.FindEdge(a, b); ex >= 0 {
			e = ex
		} else {
			e = g.AddEdge(a, b)
		}
		g.SetEdgeAttr(e, "rel", "couple")
		couples = append(couples, [2]egocensus.NodeID{a, b})
	}
	fmt.Printf("network: %d people, %d relationships, %d couples\n\n",
		g.NumNodes(), g.NumEdges(), len(couples))

	// The Fig 1(a) pattern: two couples (?A,?B) and (?C,?D) whose members
	// are friends across couples.
	engine := egocensus.NewEngine(g)
	tables, err := engine.Execute(`
PATTERN couple_pair {
  ?A-?B; ?C-?D;
  ?A-?C; ?B-?D;
  [EDGE(?A,?B).rel = 'couple'];
  [EDGE(?C,?D).rel = 'couple'];
  [EDGE(?A,?C).rel = 'friend'];
  [EDGE(?B,?D).rel = 'friend'];
}
SELECT ID, COUNTP(couple_pair, SUBGRAPH(ID, 2)) FROM nodes;
`)
	if err != nil {
		log.Fatal(err)
	}
	counts := tables[0].TypedRows
	byNode := make(map[egocensus.NodeID]int64, len(counts))
	for _, r := range counts {
		byNode[r.Focal[0]] = r.Count
	}

	// Rank couples by the couple-pairs in their combined (union) 2-hop
	// network, approximated here by the sum of member counts; ties broken
	// by node id.
	type ranked struct {
		couple [2]egocensus.NodeID
		score  int64
	}
	var rankedCouples []ranked
	for _, c := range couples {
		rankedCouples = append(rankedCouples, ranked{c, byNode[c[0]] + byNode[c[1]]})
	}
	sort.Slice(rankedCouples, func(i, j int) bool {
		if rankedCouples[i].score != rankedCouples[j].score {
			return rankedCouples[i].score > rankedCouples[j].score
		}
		return rankedCouples[i].couple[0] < rankedCouples[j].couple[0]
	})
	fmt.Printf("global couple-pair structures: %d\n", tables[0].NumMatches)
	fmt.Println("top couples to target (couple-pair structures in members' 2-hop networks):")
	for i, rc := range rankedCouples {
		if i == 5 {
			break
		}
		fmt.Printf("  couple (%d, %d): %d\n", rc.couple[0], rc.couple[1], rc.score)
	}
}
