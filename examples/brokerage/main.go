// Brokerage analysis (Fig 1(c) of the paper): in a directed transaction
// network where every node belongs to an organization, the middle node B
// of an open directed triad A -> B -> C plays a role determined by the
// organizations of the three nodes:
//
//   - coordinator: A, B and C all in the same organization,
//   - gatekeeper:  A outside, B and C inside the same organization,
//   - representative: A and B inside, C outside,
//   - liaison:     all three in different organizations.
//
// Each role is one COUNTSP census with the subpattern {?B} at k=0: the
// count for a node is the number of triads in which it is the broker.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"egocensus"
)

func main() {
	people := flag.Int("people", 400, "number of actors")
	orgs := flag.Int("orgs", 6, "number of organizations")
	edges := flag.Int("edges", 2400, "number of directed transactions")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	g := egocensus.NewGraph(true)
	for i := 0; i < *people; i++ {
		n := g.AddNode()
		g.SetLabel(n, fmt.Sprintf("org%d", rng.Intn(*orgs)))
	}
	seen := map[[2]egocensus.NodeID]bool{}
	for g.NumEdges() < *edges {
		a := egocensus.NodeID(rng.Intn(*people))
		b := egocensus.NodeID(rng.Intn(*people))
		if a == b || seen[[2]egocensus.NodeID{a, b}] {
			continue
		}
		seen[[2]egocensus.NodeID{a, b}] = true
		g.AddEdge(a, b)
	}
	fmt.Printf("transaction network: %d actors in %d organizations, %d transactions\n\n",
		*people, *orgs, *edges)

	engine := egocensus.NewEngine(g)
	tables, err := engine.Execute(`
-- Coordinator: everyone in the same organization (Table I row 4).
PATTERN coordinator_triad {
  ?A->?B; ?B->?C; ?A!->?C;
  [?A.LABEL=?B.LABEL]; [?B.LABEL=?C.LABEL];
  SUBPATTERN broker {?B;}
}
SELECT ID, COUNTSP(broker, coordinator_triad, SUBGRAPH(ID, 0)) FROM nodes;

-- Gatekeeper: the source is an outsider, broker and sink share an org.
PATTERN gatekeeper_triad {
  ?A->?B; ?B->?C; ?A!->?C;
  [?A.LABEL!=?B.LABEL]; [?B.LABEL=?C.LABEL];
  SUBPATTERN broker {?B;}
}
SELECT ID, COUNTSP(broker, gatekeeper_triad, SUBGRAPH(ID, 0)) FROM nodes;

-- Representative: broker carries its own org's transaction outside.
PATTERN representative_triad {
  ?A->?B; ?B->?C; ?A!->?C;
  [?A.LABEL=?B.LABEL]; [?B.LABEL!=?C.LABEL];
  SUBPATTERN broker {?B;}
}
SELECT ID, COUNTSP(broker, representative_triad, SUBGRAPH(ID, 0)) FROM nodes;

-- Liaison: all three organizations differ.
PATTERN liaison_triad {
  ?A->?B; ?B->?C; ?A!->?C;
  [?A.LABEL!=?B.LABEL]; [?B.LABEL!=?C.LABEL]; [?A.LABEL!=?C.LABEL];
  SUBPATTERN broker {?B;}
}
SELECT ID, COUNTSP(broker, liaison_triad, SUBGRAPH(ID, 0)) FROM nodes;
`)
	if err != nil {
		log.Fatal(err)
	}

	roles := []string{"coordinator", "gatekeeper", "representative", "liaison"}
	for i, t := range tables {
		rows := append([]egocensus.ResultRow(nil), t.TypedRows...)
		sort.Slice(rows, func(a, b int) bool {
			if rows[a].Count != rows[b].Count {
				return rows[a].Count > rows[b].Count
			}
			return rows[a].Focal[0] < rows[b].Focal[0]
		})
		fmt.Printf("top %ss (%d triads in total):\n", roles[i], t.NumMatches)
		for j := 0; j < 3 && j < len(rows); j++ {
			n := rows[j].Focal[0]
			fmt.Printf("  node %-4d (%s): %d brokered triads\n", n, g.LabelString(n), rows[j].Count)
		}
		fmt.Println()
	}
}
