// Structural balance (Section I of the paper): in a signed network,
// triangles with an odd number of negative edges are unstable. This
// example measures each node's local instability by counting unstable
// triangles (one or three negative edges) in its 2-hop neighborhood, and
// contrasts it with the count of balanced triangles.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"egocensus"
)

func main() {
	nodes := flag.Int("nodes", 800, "network size")
	pNeg := flag.Float64("pneg", 0.25, "probability that a tie is negative")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g := egocensus.PreferentialAttachment(*nodes, 5, *seed)
	egocensus.AssignSigns(g, *pNeg, *seed+1)
	fmt.Printf("signed network: %d nodes, %d edges (~%.0f%% negative)\n\n",
		g.NumNodes(), g.NumEdges(), *pNeg*100)

	engine := egocensus.NewEngine(g)
	// The unstable configurations: exactly one negative edge, or all
	// three negative. Patterns come from the built-in library; declaring
	// them in the language would work the same way.
	if err := engine.DefinePattern(egocensus.UnstableTrianglePattern("unstable1", 1)); err != nil {
		log.Fatal(err)
	}
	if err := engine.DefinePattern(egocensus.UnstableTrianglePattern("unstable3", 3)); err != nil {
		log.Fatal(err)
	}
	tables, err := engine.Execute(`
SELECT ID, COUNTP(unstable1, SUBGRAPH(ID, 2)) FROM nodes;
SELECT ID, COUNTP(unstable3, SUBGRAPH(ID, 2)) FROM nodes;

-- All triangles, for the instability ratio.
PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }
SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes;
`)
	if err != nil {
		log.Fatal(err)
	}
	u1, u3, all := tables[0], tables[1], tables[2]
	fmt.Printf("global triangles: %d, with 1 negative edge: %d, with 3: %d\n\n",
		all.NumMatches, u1.NumMatches, u3.NumMatches)

	type nodeScore struct {
		n                  egocensus.NodeID
		unstable, total    int64
		instabilityPercent float64
	}
	scores := make([]nodeScore, g.NumNodes())
	for i := range scores {
		scores[i].n = u1.TypedRows[i].Focal[0]
		scores[i].unstable = u1.TypedRows[i].Count + u3.TypedRows[i].Count
		scores[i].total = all.TypedRows[i].Count
		if scores[i].total > 0 {
			scores[i].instabilityPercent = 100 * float64(scores[i].unstable) / float64(scores[i].total)
		}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].unstable != scores[j].unstable {
			return scores[i].unstable > scores[j].unstable
		}
		return scores[i].n < scores[j].n
	})
	fmt.Println("most unstable ego networks (unstable triangles within 2 hops):")
	for i := 0; i < 5 && i < len(scores); i++ {
		s := scores[i]
		fmt.Printf("  node %-5d unstable %-6d of %-6d triangles (%.1f%%)\n",
			s.n, s.unstable, s.total, s.instabilityPercent)
	}
}
