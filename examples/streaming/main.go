// Streaming census: maintain a triangle census incrementally while edges
// arrive, as in a live social network. This exercises the repository's
// dynamic-graph extension (the paper's algorithms are batch-only): after
// every insertion the per-node counts are updated in place, and the
// example periodically verifies them against a full recomputation.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"egocensus"
)

func main() {
	people := flag.Int("people", 400, "population size")
	stream := flag.Int("edges", 1200, "edges to stream")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	g := egocensus.NewGraph(false)
	for i := 0; i < *people; i++ {
		g.AddNode()
	}
	spec := egocensus.Spec{Pattern: egocensus.CliquePattern("tri", 3, nil), K: 2}
	inc, err := egocensus.NewIncremental(g, spec, egocensus.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d friendships into a %d-person network\n\n", *stream, *people)
	checkpoints := map[int]bool{*stream / 4: true, *stream / 2: true, *stream: true}
	added := 0
	for added < *stream {
		// Friendships form with triadic closure: half the time pick a
		// friend-of-a-friend.
		a := egocensus.NodeID(rng.Intn(*people))
		b := egocensus.NodeID(rng.Intn(*people))
		if rng.Float64() < 0.5 {
			if nbrs := inc.Graph().Neighbors(a); len(nbrs) > 0 {
				mid := nbrs[rng.Intn(len(nbrs))]
				if nn := inc.Graph().Neighbors(mid); len(nn) > 0 {
					b = nn[rng.Intn(len(nn))]
				}
			}
		}
		if a == b || inc.Graph().HasEdge(a, b) {
			continue
		}
		inc.AddEdge(a, b)
		added++

		if checkpoints[added] {
			// Verify the maintained counts against a fresh computation.
			fresh, err := egocensus.Count(inc.Graph(), spec, egocensus.PTOpt, egocensus.Options{Seed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			for n := range fresh.Counts {
				if inc.Counts()[n] != fresh.Counts[n] {
					log.Fatalf("drift at node %d: incremental %d, recompute %d",
						n, inc.Counts()[n], fresh.Counts[n])
				}
			}
			type nc struct {
				n egocensus.NodeID
				c int64
			}
			top := make([]nc, 0, len(fresh.Counts))
			for n, c := range inc.Counts() {
				top = append(top, nc{egocensus.NodeID(n), c})
			}
			sort.Slice(top, func(i, j int) bool {
				if top[i].c != top[j].c {
					return top[i].c > top[j].c
				}
				return top[i].n < top[j].n
			})
			fmt.Printf("after %4d edges: %d triangles total; top egos:", added, inc.NumMatches())
			for i := 0; i < 3 && i < len(top); i++ {
				fmt.Printf("  node %d (%d)", top[i].n, top[i].c)
			}
			fmt.Println("  [verified against full recompute]")
		}
	}
}
