// Link prediction (Section V-B of the paper): predict future scientific
// collaborations from co-authorship history. The training graph covers
// 2001–2005; ground truth is the pairs that first collaborate in
// 2006–2010. Pairwise census measures — counts of nodes, edges and
// triangles in each pair's common r-hop neighborhood — are ranked against
// the Jaccard coefficient and a random predictor by precision@K.
//
// The corpus is synthetic (the repository has no DBLP access) but is
// generated with repeat-collaboration and triadic-closure dynamics, which
// is exactly the mechanism that makes common-neighborhood counts
// predictive on the real data.
package main

import (
	"flag"
	"fmt"
	"log"

	"egocensus"
)

func main() {
	authors := flag.Int("authors", 800, "author population")
	papers := flag.Int("papers", 140, "papers per year")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := egocensus.DefaultCoauthConfig()
	cfg.Authors = *authors
	cfg.PapersPerYear = *papers
	cfg.Seed = *seed
	corpus := egocensus.GenerateCoauthorship(cfg)

	train, authorNode := corpus.Graph(2001, 2005)
	positives := map[egocensus.Pair]bool{}
	for pr := range corpus.NewPairs(2006, 2010) {
		na, oka := authorNode[pr[0]]
		nb, okb := authorNode[pr[1]]
		if oka && okb {
			positives[egocensus.MakePair(na, nb)] = true
		}
	}
	fmt.Printf("training graph 2001-2005: %d authors, %d co-author edges\n", train.NumNodes(), train.NumEdges())
	fmt.Printf("new collaborations 2006-2010 (both authors known): %d\n\n", len(positives))

	eval := &egocensus.LinkPredEval{Train: train, Positives: positives}

	fmt.Printf("%-12s  %8s  %8s  %8s\n", "measure", "p@50", "p@600", "AUC")
	for _, m := range egocensus.LinkPredMeasures() {
		// Each measure is the query
		//   SELECT n1.ID, n2.ID, COUNTP(struct,
		//          SUBGRAPH-INTERSECTION(n1.ID, n2.ID, r))
		//   FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID
		scores, err := m.Score(train, egocensus.PTOpt, egocensus.Options{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %8.4f  %8.4f  %8.4f\n", m.Name,
			eval.PrecisionAtK(scores, 50), eval.PrecisionAtK(scores, 600), eval.AUC(scores))
	}
	jac := egocensus.JaccardScores(train)
	fmt.Printf("%-12s  %8.4f  %8.4f  %8.4f\n", "jaccard",
		eval.PrecisionAtK(jac, 50), eval.PrecisionAtK(jac, 600), eval.AUC(jac))
	rnd := egocensus.RandomScores(train, 5000, *seed+9)
	fmt.Printf("%-12s  %8.4f  %8.4f  %8.4f\n", "random",
		eval.PrecisionAtK(rnd, 50), eval.PrecisionAtK(rnd, 600), eval.AUC(rnd))
}
