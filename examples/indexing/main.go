// Graph indexing (Section I of the paper): counts of structural patterns
// in every node's k-hop neighborhood act as node signatures that prune the
// search space of subgraph pattern matching. This example builds the
// signature index, then shows (a) candidate pruning for a clique query
// and (b) short-circuit rejection of a query that cannot occur at all.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"egocensus"
)

func main() {
	nodes := flag.Int("nodes", 3000, "database graph size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g := egocensus.PreferentialAttachment(*nodes, 5, *seed)
	egocensus.AssignLabels(g, 4, *seed+1)
	fmt.Printf("database graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	start := time.Now()
	idx, err := egocensus.BuildSignatures(g, egocensus.SignatureConfig{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature index (node/edge/triangle/path censuses at k=1): built in %v\n\n", time.Since(start))

	// (a) candidate pruning for a 4-clique query.
	q := egocensus.CliquePattern("clq4", 4, nil)
	qsig, err := idx.QuerySignatures(q)
	if err != nil {
		log.Fatal(err)
	}
	pruned := len(idx.Candidates(g, q, qsig, 0))
	fmt.Printf("clq4 query: signature pruning keeps %d of %d nodes as candidates (%.1f%%)\n",
		pruned, g.NumNodes(), 100*float64(pruned)/float64(g.NumNodes()))

	plain := egocensus.FindMatches(egocensus.CN{}, g, q)
	sigMatches := egocensus.FindMatches(egocensus.SignatureMatcher{Index: idx}, g, q)
	fmt.Printf("matches: %d (plain CN) = %d (signature-pruned)\n\n", len(plain), len(sigMatches))

	// (b) short-circuit: a 6-clique query on this sparse graph.
	q6 := egocensus.CliquePattern("clq6", 6, nil)
	start = time.Now()
	m6 := egocensus.FindMatches(egocensus.SignatureMatcher{Index: idx}, g, q6)
	fmt.Printf("clq6 query via signatures: %d matches decided in %v\n", len(m6), time.Since(start))
	start = time.Now()
	m6plain := egocensus.FindMatches(egocensus.CN{}, g, q6)
	fmt.Printf("clq6 query via plain CN:   %d matches decided in %v\n", len(m6plain), time.Since(start))
}
