// Quickstart: generate a small preferential-attachment graph, declare
// patterns in the census language, and run the three single-node queries
// of the paper's Table I.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"egocensus"
)

func main() {
	nodes := flag.Int("nodes", 2000, "graph size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	// A Barabási–Albert graph with |E| = 5 |V| and 4 random labels — the
	// paper's synthetic database graph.
	g := egocensus.PreferentialAttachment(*nodes, 5, *seed)
	egocensus.AssignLabels(g, 4, *seed+1)
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	e := egocensus.NewEngine(g)
	tables, err := e.Execute(`
-- Table I row 1: how many nodes are within 2 hops of each node?
PATTERN single_node { ?A; }
SELECT ID, COUNTP(single_node, SUBGRAPH(ID, 2)) FROM nodes;

-- Table I row 3: how many squares (4-cycles) in each 2-hop neighborhood?
PATTERN square {
  ?A-?B; ?B-?C;
  ?C-?D; ?D-?A;
}
SELECT ID, COUNTP(square, SUBGRAPH(ID, 2)) FROM nodes WHERE RND() < 0.05;

-- A labeled triangle census (the clq3 pattern of Figure 3).
PATTERN clq3 {
  ?A-?B; ?B-?C; ?A-?C;
  [?A.LABEL='l0']; [?B.LABEL='l1']; [?C.LABEL='l2'];
}
SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes;
`)
	if err != nil {
		log.Fatal(err)
	}

	titles := []string{
		"2-hop neighborhood sizes (top 5)",
		"squares in 2-hop neighborhoods of a 5% focal sample (top 5)",
		"labeled triangles (clq3) in 2-hop neighborhoods (top 5)",
	}
	for i, t := range tables {
		rows := append([]egocensus.ResultRow(nil), t.TypedRows...)
		sort.Slice(rows, func(a, b int) bool { return rows[a].Count > rows[b].Count })
		if len(rows) > 5 {
			rows = rows[:5]
		}
		fmt.Printf("%s  [algorithm %s, %d global matches]\n", titles[i], t.Algorithm, t.NumMatches)
		for _, r := range rows {
			fmt.Printf("  node %-6d count %d\n", r.Focal[0], r.Count)
		}
		fmt.Println()
	}
}
