module egocensus

go 1.22
