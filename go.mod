module egocensus

go 1.23
