// Package egocensus is a Go implementation of ego-centric graph pattern
// census queries (Moustafa, Deshpande, Getoor — "Ego-centric Graph Pattern
// Census", ICDE 2012): for every focal node (or pair of nodes) in a graph,
// count the matches of a structural pattern inside the node's k-hop
// neighborhood (or the intersection/union of two nodes' neighborhoods).
//
// The package is a curated facade over the implementation packages:
//
//   - property graphs and neighborhood traversal (internal/graph),
//   - the declarative query language — PATTERN definitions and SELECT
//     statements with COUNTP/COUNTSP aggregates (internal/lang),
//   - the CN subgraph pattern matching algorithm and a GraphQL-style
//     baseline (internal/match),
//   - the census evaluation algorithms ND-BAS, ND-DIFF, ND-PVOT, PT-BAS,
//     PT-RND and PT-OPT (internal/core),
//   - synthetic workload generators (internal/gen),
//   - a disk-resident binary graph store (internal/storage),
//   - the link-prediction harness of the paper's DBLP experiment
//     (internal/linkpred).
//
// # Quick start
//
//	g := egocensus.PreferentialAttachment(10000, 5, 1)
//	e := egocensus.NewEngine(g)
//	tables, err := e.Execute(`
//	    PATTERN clq3 { ?A-?B; ?B-?C; ?A-?C; }
//	    SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes`)
package egocensus

import (
	"context"

	"egocensus/internal/centers"
	"egocensus/internal/core"
	"egocensus/internal/gen"
	"egocensus/internal/graph"
	"egocensus/internal/lang"
	"egocensus/internal/linkpred"
	"egocensus/internal/match"
	"egocensus/internal/measures"
	"egocensus/internal/pattern"
	"egocensus/internal/plan"
	"egocensus/internal/signature"
	"egocensus/internal/stats"
	"egocensus/internal/storage"
)

// Graph types.
type (
	// Graph is an adjacency-list property graph (directed or undirected)
	// with node labels and free-form node/edge attributes.
	Graph = graph.Graph
	// NodeID identifies a node (dense, 0-based).
	NodeID = graph.NodeID
	// EdgeID identifies an edge (dense, 0-based).
	EdgeID = graph.EdgeID
	// Subgraph is an extracted neighborhood subgraph with local/global ID
	// mappings.
	Subgraph = graph.Subgraph
)

// NewGraph returns an empty graph; directed selects edge semantics.
func NewGraph(directed bool) *Graph { return graph.New(directed) }

// Pattern types.
type (
	// Pattern is a pattern graph: variables, undirected/directed/negated
	// edges, attribute predicates, and named subpatterns.
	Pattern = pattern.Pattern
	// Match is an embedding of a pattern: Match[i] is the image of
	// pattern node i.
	Match = pattern.Match
	// Predicate is an attribute comparison attached to a pattern.
	Predicate = pattern.Predicate
)

// NewPattern returns an empty named pattern for programmatic construction;
// most users write PATTERN statements instead.
func NewPattern(name string) *Pattern { return pattern.New(name) }

// Pattern library constructors (the shapes of the paper's Figure 3).
var (
	// SingleNodePattern builds the single_node pattern (Table I row 1).
	SingleNodePattern = pattern.SingleNode
	// SingleEdgePattern builds the single_edge pattern (Table I row 2).
	SingleEdgePattern = pattern.SingleEdge
	// CliquePattern builds an n-clique (clq3, clq4, clq3-unlb of Fig 3).
	CliquePattern = pattern.Clique
	// SquarePattern builds the 4-cycle sqr pattern.
	SquarePattern = pattern.Square
	// ChainPattern builds a simple path.
	ChainPattern = pattern.Chain
	// StarPattern builds a hub-and-leaves star.
	StarPattern = pattern.Star
	// CoordinatorTriadPattern builds the brokerage triad with its
	// coordinator subpattern (Table I row 4).
	CoordinatorTriadPattern = pattern.CoordinatorTriad
	// UnstableTrianglePattern builds the structural-balance triangle with
	// 1 or 3 negative edges.
	UnstableTrianglePattern = pattern.UnstableTriangle
)

// Matching.
type (
	// Matcher finds pattern embeddings in a graph.
	Matcher = match.Matcher
	// MaskedMatcher is a Matcher that can restrict matching to a node
	// subset in place on the parent graph; the node-driven census drivers
	// use it to avoid extracting neighborhood subgraphs.
	MaskedMatcher = match.MaskedMatcher
	// CN is the paper's candidate-neighbor matching algorithm
	// (Algorithm 1).
	CN = match.CN
	// GQL is the GraphQL-style baseline matcher.
	GQL = match.GQL
)

// FindMatches runs a matcher and deduplicates automorphic embeddings,
// yielding the set of matches M.
func FindMatches(m Matcher, g *Graph, p *Pattern) []Match {
	return match.FindMatches(m, g, p)
}

// Census evaluation.
type (
	// Algorithm names a census evaluation algorithm.
	Algorithm = core.Algorithm
	// Spec describes a single-node census (COUNTP/COUNTSP over
	// SUBGRAPH(ID, k)).
	Spec = core.Spec
	// PairSpec describes a pairwise census over neighborhood
	// intersections or unions.
	PairSpec = core.PairSpec
	// Pair is an unordered node pair in canonical order.
	Pair = core.Pair
	// Options tunes algorithm internals (centers, clustering, matcher).
	Options = core.Options
	// Result holds per-node census counts.
	Result = core.Result
	// PairResult holds per-pair census counts.
	PairResult = core.PairResult
	// PairMode selects intersection or union pairwise neighborhoods.
	PairMode = core.PairMode
)

// Failure semantics: every evaluation entry point has a Context variant
// whose cancellation, deadline, and resource limits surface as typed
// errors carrying partial results (see doc/ARCHITECTURE.md, "Failure
// semantics").
type (
	// Limits bounds the resources one evaluation may consume; set it on
	// Options.Limits. The zero value imposes no limits.
	Limits = core.Limits
	// Progress snapshots how far an evaluation got before it stopped.
	Progress = core.Progress
	// CanceledError reports a context cancellation or deadline expiry,
	// with partial results attached.
	CanceledError = core.CanceledError
	// LimitError reports an exceeded resource limit, with partial results
	// attached.
	LimitError = core.LimitError
	// InternalError reports a panic inside the engine's execution
	// pipeline, converted at the execution boundary with the query text
	// and plan attached.
	InternalError = core.InternalError
	// CorruptFileError reports a graph file that failed structural
	// validation on open.
	CorruptFileError = storage.CorruptFileError
)

// The census algorithms of Section IV.
const (
	NDBas  = core.NDBas
	NDDiff = core.NDDiff
	NDPvot = core.NDPvot
	PTBas  = core.PTBas
	PTRnd  = core.PTRnd
	PTOpt  = core.PTOpt
)

// Pairwise neighborhood modes.
const (
	Intersection = core.Intersection
	Union        = core.Union
)

// DefaultWorkers returns the worker count the front ends use for "auto"
// parallelism (one worker per CPU); set Options.Workers to it to use every
// core for the counting phase.
func DefaultWorkers() int { return core.DefaultWorkers() }

// Count evaluates a single-node census with the chosen algorithm.
func Count(g *Graph, spec Spec, alg Algorithm, opt Options) (*Result, error) {
	return core.Count(g, spec, alg, opt)
}

// CensusContext is Count under a context: cancellation, deadline expiry,
// and the resource limits of opt.Limits stop evaluation within a bounded
// interval, returning a *CanceledError or *LimitError that carries the
// partial census accumulated so far.
func CensusContext(ctx context.Context, g *Graph, spec Spec, alg Algorithm, opt Options) (*Result, error) {
	return core.CountContext(ctx, g, spec, alg, opt)
}

// CountPairs evaluates a pairwise census.
func CountPairs(g *Graph, spec PairSpec, alg Algorithm, opt Options) (*PairResult, error) {
	return core.CountPairs(g, spec, alg, opt)
}

// PairCensusContext is CountPairs under a context, with the failure
// semantics of CensusContext.
func PairCensusContext(ctx context.Context, g *Graph, spec PairSpec, alg Algorithm, opt Options) (*PairResult, error) {
	return core.CountPairsContext(ctx, g, spec, alg, opt)
}

// MakePair returns the canonical form of an unordered pair.
func MakePair(a, b NodeID) Pair { return core.MakePair(a, b) }

// Extensions (the paper's future-work section, implemented here).
type (
	// NodeCount is one ranked census result.
	NodeCount = core.NodeCount
	// PairCount is one ranked pairwise census result.
	PairCount = core.PairCount
	// ApproxResult holds estimated census counts from match sampling.
	ApproxResult = core.ApproxResult
)

// TopK returns the k focal nodes with the highest census counts.
func TopK(g *Graph, spec Spec, k int, alg Algorithm, opt Options) ([]NodeCount, error) {
	return core.TopK(g, spec, k, alg, opt)
}

// TopKPairs returns the k pairs with the highest pairwise census counts.
func TopKPairs(g *Graph, spec PairSpec, k int, alg Algorithm, opt Options) ([]PairCount, error) {
	return core.TopKPairs(g, spec, k, alg, opt)
}

// CountApprox estimates a census by match sampling: each match is kept
// with probability sampleRate and counts are scaled by its inverse — an
// unbiased estimator that shrinks the counting phase proportionally.
func CountApprox(g *Graph, spec Spec, sampleRate float64, opt Options) (*ApproxResult, error) {
	return core.CountApprox(g, spec, sampleRate, opt)
}

// Incremental maintains a census over a growing graph: per-node counts are
// updated after every AddEdge without recomputation.
type Incremental = core.Incremental

// NewIncremental computes the initial census and returns the maintained
// state; grow the graph through its AddNode/AddEdge methods.
func NewIncremental(g *Graph, spec Spec, opt Options) (*Incremental, error) {
	return core.NewIncremental(g, spec, opt)
}

// CountMany evaluates several censuses sharing one radius and focal set in
// a single pass, amortizing the per-node neighborhood traversal across
// patterns.
func CountMany(g *Graph, specs []Spec, opt Options) ([]*Result, error) {
	return core.CountMany(g, specs, opt)
}

// Query engine.
type (
	// Engine executes census scripts against a graph (or a lazy Source).
	Engine = core.Engine
	// ResultTable is one query's rendered result.
	ResultTable = core.Table
	// ResultRow is one typed result row.
	ResultRow = core.Row
	// ExecStats breaks one query's execution down per pipeline stage.
	ExecStats = core.ExecStats
	// Script is a parsed script (PATTERN definitions + SELECT queries).
	Script = lang.Script
	// GraphStats is the statistical snapshot the cost-based optimizer
	// plans against.
	GraphStats = graph.Stats
	// QueryPlan is an optimized plan: the logical tree annotated with
	// cost estimates and per-aggregate algorithm choices.
	QueryPlan = plan.Physical
	// GraphSource supplies planner statistics and lazily hydrates a graph
	// for execution; Store implements it, so engines can plan and EXPLAIN
	// against a disk store before materialization.
	GraphSource = plan.Source
	// Prepared is a compiled census query: parsed and fingerprinted once,
	// executed many times with per-call $name parameter bindings, sharing
	// the engine's epoch-keyed plan and result caches. Safe for unlimited
	// concurrent callers.
	Prepared = core.Prepared
	// ExecOptions are per-execution knobs for a prepared query (limit
	// overrides, result-cache bypass).
	ExecOptions = core.ExecOptions
	// ParamError reports missing or unexpected parameter bindings.
	ParamError = core.ParamError
	// EngineCacheStats reports the engine's plan- and result-cache
	// counters.
	EngineCacheStats = core.CacheStats
	// QueryFingerprint is the canonical 128-bit cache key of a query.
	QueryFingerprint = lang.Fingerprint
)

// NewEngine returns a query engine over g.
func NewEngine(g *Graph) *Engine { return core.NewEngine(g) }

// NewEngineFromSource returns a query engine over a lazy graph source
// (e.g. a *Store): planning and EXPLAIN use only the source's statistics
// snapshot; the graph materializes when a query first executes.
func NewEngineFromSource(src GraphSource) *Engine { return core.NewEngineFromSource(src) }

// ComputeGraphStats takes the statistics snapshot of an in-memory graph.
func ComputeGraphStats(g *Graph) *GraphStats { return graph.ComputeStats(g) }

// ParseScript parses a census script without executing it.
func ParseScript(src string) (*Script, error) { return lang.Parse(src) }

// FormatTable renders a result table as aligned text.
func FormatTable(t *ResultTable) string { return core.FormatTable(t) }

// Center index (PT-OPT internals, exposed for the Fig 4(f) ablation).
type (
	// CenterIndex holds precomputed center distance rows.
	CenterIndex = centers.Index
	// CenterStrategy selects degree-based or random centers.
	CenterStrategy = centers.Strategy
)

// Center selection strategies.
const (
	CentersByDegree = centers.ByDegree
	CentersRandom   = centers.Random
)

// BuildCenters builds a center distance index over g.
func BuildCenters(g *Graph, numCenters int, strategy CenterStrategy, seed int64) *CenterIndex {
	return centers.Build(g, numCenters, strategy, seed)
}

// Synthetic workloads.
var (
	// PreferentialAttachment generates a Barabási–Albert graph (the
	// paper's synthetic database graphs).
	PreferentialAttachment = gen.PreferentialAttachment
	// ErdosRenyi generates a uniform random graph.
	ErdosRenyi = gen.ErdosRenyi
	// AssignLabels labels every node uniformly from a label set.
	AssignLabels = gen.AssignLabels
	// AssignSigns marks edges with +/- signs for signed-network analyses.
	AssignSigns = gen.AssignSigns
	// GenerateCoauthorship builds a temporal co-authorship corpus (the
	// DBLP substitute of the link-prediction experiment).
	GenerateCoauthorship = gen.GenerateCoauthorship
	// DefaultCoauthConfig mirrors the scale of the paper's DBLP corpus.
	DefaultCoauthConfig = gen.DefaultCoauthConfig
)

// Coauthorship types.
type (
	// CoauthConfig configures the co-authorship generator.
	CoauthConfig = gen.CoauthConfig
	// Coauthorship is a generated temporal co-authorship corpus.
	Coauthorship = gen.Coauthorship
)

// Storage.
var (
	// SaveGraph writes a graph to the binary disk format.
	SaveGraph = storage.Save
	// LoadGraph reads a graph file fully into memory.
	LoadGraph = storage.Load
	// OpenStore opens a graph file for on-demand, cache-backed access.
	OpenStore = storage.Open
)

// Store serves a graph file without materializing it.
type Store = storage.Store

// Versioned graph core (MVCC): a single Writer batches mutations and
// atomically publishes immutable, epoch-stamped snapshots; readers pin a
// version in O(1) and are never blocked by writes (nor writes by reads).
// See doc/ARCHITECTURE.md, "Versioning & concurrency".
type (
	// Snapshot is one immutable published version of a mutating graph;
	// census evaluation against it is exact for its epoch.
	Snapshot = graph.Snapshot
	// GraphWriter is the single mutation path of a versioned graph: it
	// stages AddNode/AddEdge/SetLabel/Set*Attr batches and Publish
	// installs the next snapshot copy-on-write.
	GraphWriter = graph.Writer
	// WriterStats is a point-in-time monitoring view of a GraphWriter
	// (epoch, staged sizes, delta-overlay shape, compactions).
	WriterStats = graph.WriterStats
	// Mutation is one staged graph operation of a mutation batch.
	Mutation = graph.Op
	// MutationBatch is one published batch of mutations with the epoch
	// it produced; Writer subscribers and the durable mutation log
	// consume these.
	MutationBatch = graph.Delta
	// Maintainer keeps registered census queries incrementally up to
	// date against the batches a GraphWriter publishes, without
	// recomputation.
	Maintainer = core.Maintainer
	// DynamicStore durably backs a mutating graph: a base .egoc image
	// plus an fsynced append-only mutation log, with crash recovery on
	// open and background log compaction.
	DynamicStore = storage.DynamicStore
	// Partitioner is the deterministic node-to-shard map of a sharded
	// store; its shard count is fixed at creation and recorded in the
	// image header. The zero value is disabled (one shard).
	Partitioner = graph.Partitioner
	// ShardedGraphWriter is the mutation path of a sharded versioned
	// graph: P independent staging/WAL/apply lanes composed under a
	// single global epoch, with per-shard degraded mode. A 1-shard
	// writer behaves exactly like GraphWriter.
	ShardedGraphWriter = graph.ShardedWriter
)

// NewWriter freezes g as the epoch-0 snapshot and returns its writer; all
// further mutation goes through the writer.
func NewWriter(g *Graph) *GraphWriter { return graph.NewWriter(g) }

// FreezeGraph seals g as an immutable epoch-0 snapshot without a writer.
func FreezeGraph(g *Graph) *Snapshot { return graph.Freeze(g) }

// NewLiveEngine returns a query engine over a mutating graph: every query
// pins the writer's snapshot current at execution start, so results (and
// the Epoch stamped on each table) are version-consistent even while
// ingest continues.
func NewLiveEngine(w *GraphWriter) *Engine { return core.NewEngineLive(w) }

// NewShardedWriter freezes g as the epoch-0 snapshot of a P-lane sharded
// writer; NewPartitioner(shards) is its node-to-shard map.
func NewShardedWriter(g *Graph, shards int) *ShardedGraphWriter {
	return graph.NewShardedWriter(g, shards)
}

// NewPartitioner returns the deterministic node-to-shard map used by
// sharded writers and stores with the given shard count.
func NewPartitioner(shards int) Partitioner { return graph.NewPartitioner(shards) }

// NewLiveShardedEngine returns a query engine over a sharded mutating
// graph: queries pin snapshots exactly as with NewLiveEngine, and census
// scheduling is seeded shard-affinely through the writer's partitioner
// (results are identical to the unsharded engine's).
func NewLiveShardedEngine(w *ShardedGraphWriter) *Engine {
	return core.NewEngineLiveSharded(w)
}

// CountSnapshot evaluates a single-node census against one pinned
// version.
func CountSnapshot(s *Snapshot, spec Spec, alg Algorithm, opt Options) (*Result, error) {
	return core.CountSnapshot(s, spec, alg, opt)
}

// CountPairsSnapshot evaluates a pairwise census against one pinned
// version.
func CountPairsSnapshot(s *Snapshot, spec PairSpec, alg Algorithm, opt Options) (*PairResult, error) {
	return core.CountPairsSnapshot(s, spec, alg, opt)
}

// NewMaintainer starts incremental census maintenance from snapshot s;
// Register queries, then Attach the maintainer to the snapshot's writer.
func NewMaintainer(s *Snapshot) *Maintainer { return core.NewMaintainer(s) }

// CreateDynamic initializes a durable dynamic store at basePath from g
// (base image + empty mutation log); fails if basePath exists.
func CreateDynamic(basePath string, g *Graph) (*DynamicStore, error) {
	return storage.CreateDynamic(basePath, g)
}

// CreateDynamicSharded initializes a durable dynamic store with P
// independent ingest lanes: the mutation log becomes P per-shard segment
// files that append, fsync, and replay in parallel, and one full shard
// degrades alone instead of blocking the rest. The shard count is
// recorded in the image header; shards == 1 produces the unsharded
// layout byte for byte.
func CreateDynamicSharded(basePath string, g *Graph, shards int) (*DynamicStore, error) {
	return storage.CreateDynamicSharded(basePath, g, shards)
}

// OpenDynamic opens a dynamic store, replaying the mutation log onto the
// base image — truncating a torn tail from a crashed append, discarding a
// stale log from a crashed compaction — and resumes the epoch sequence.
// The store's recorded shard count (one for pre-sharding stores) selects
// the log layout automatically.
func OpenDynamic(basePath string) (*DynamicStore, error) {
	return storage.OpenDynamic(basePath)
}

// Graph indexing (Section I application): census-based node signatures
// for subgraph-search candidate pruning.
type (
	// SignatureIndex holds per-node census signatures.
	SignatureIndex = signature.Index
	// SignatureConfig selects the signature pattern family and radius.
	SignatureConfig = signature.Config
	// SignatureMatcher wraps a matcher with signature pre-filtering.
	SignatureMatcher = signature.Matcher
)

// BuildSignatures computes a signature index over g.
func BuildSignatures(g *Graph, cfg SignatureConfig) (*SignatureIndex, error) {
	return signature.Build(g, cfg)
}

// Global network statistics (the socio-centric analyses of Section I/VI).
var (
	// DegreeHistogram returns counts of nodes per degree.
	DegreeHistogram = stats.DegreeHistogram
	// DegreeSummary summarizes the degree distribution.
	DegreeSummary = stats.Degrees
	// LocalClustering returns per-node clustering coefficients.
	LocalClustering = stats.LocalClustering
	// GlobalClustering returns the mean local clustering coefficient.
	GlobalClustering = stats.GlobalClustering
	// Components labels connected components by decreasing size.
	Components = stats.Components
	// EstimateDiameter lower-bounds the diameter by sampled BFS.
	EstimateDiameter = stats.EstimateDiameter
	// CoreNumbers computes the k-core decomposition.
	CoreNumbers = stats.CoreNumbers
)

// Ego-centric measures expressed as censuses (the Section I reductions).
var (
	// DegreeCensus computes degrees via the single-node census.
	DegreeCensus = measures.Degree
	// ClusteringCoefficientCensus computes (k-)clustering coefficients via
	// node and edge censuses.
	ClusteringCoefficientCensus = measures.ClusteringCoefficient
	// JaccardCensus computes a pair's Jaccard coefficient via pairwise
	// censuses.
	JaccardCensus = measures.Jaccard
	// BrokerageScoresCensus counts the open triads a node brokers in a
	// given Gould-Fernandez role (Fig 1(c)).
	BrokerageScoresCensus = measures.BrokerageScores
)

// BrokerageRole names a Gould-Fernandez broker type.
type BrokerageRole = measures.BrokerageRole

// The five brokerage roles.
const (
	Coordinator    = measures.Coordinator
	Gatekeeper     = measures.Gatekeeper
	Representative = measures.Representative
	Consultant     = measures.Consultant
	Liaison        = measures.Liaison
)

// Link prediction.
type (
	// LinkPredMeasure is one pairwise census measure configuration.
	LinkPredMeasure = linkpred.Measure
	// LinkPredEval evaluates predictions by precision@K.
	LinkPredEval = linkpred.Eval
)

// LinkPredMeasures returns the paper's nine census measures.
func LinkPredMeasures() []LinkPredMeasure { return linkpred.Measures() }

// JaccardScores computes Jaccard coefficients for all pairs with common
// neighbors.
func JaccardScores(g *Graph) map[Pair]float64 { return linkpred.Jaccard(g) }

// RandomScores scores random pairs (the random-predictor baseline).
func RandomScores(g *Graph, numPairs int, seed int64) map[Pair]float64 {
	return linkpred.RandomScores(g, numPairs, seed)
}
